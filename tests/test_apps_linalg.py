"""Tests for the distributed CG solver and sample sort."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings, strategies as st

import repro.upcxx as upcxx
from repro.apps.linalg import DistSparseMatrix, cg_solve, sample_sort
from repro.apps.linalg.cg import gather_solution
from repro.apps.sparse.matrices import laplacian_3d, random_spd


class TestDistSpmv:
    def test_matvec_matches_scipy(self):
        a = laplacian_3d(4, 4, 2)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(a.shape[0])

        def body():
            da = DistSparseMatrix(a)
            y_local = da.matvec(x[da.lo : da.hi])
            ys = upcxx.allgather(y_local).wait()
            upcxx.barrier()
            return np.concatenate(ys)

        res = upcxx.run_spmd(body, 4, max_time=1e7)
        assert np.allclose(res[0], a @ x)

    def test_halo_is_sparse_not_full(self):
        """A banded matrix only needs neighbor slices, not everyone's."""
        n = 64
        a = sp.diags([np.ones(n - 1), 4 * np.ones(n), np.ones(n - 1)], [-1, 0, 1])

        def body():
            da = DistSparseMatrix(sp.csr_matrix(a))
            upcxx.barrier()
            return sorted(da.halo)

        res = upcxx.run_spmd(body, 4, max_time=1e7)
        assert res[0] == [1]  # rank 0 only touches rank 1's slice
        assert res[1] == [0, 2]
        assert res[3] == [2]


class TestCG:
    @pytest.mark.parametrize("n_procs", [1, 2, 4])
    def test_solves_laplacian(self, n_procs):
        a = laplacian_3d(4, 3, 2)
        rng = np.random.default_rng(3)
        b = rng.standard_normal(a.shape[0])

        def body():
            da = DistSparseMatrix(a)
            x_local, iters = cg_solve(da, b[da.lo : da.hi], tol=1e-12)
            x = gather_solution(da, x_local)
            upcxx.barrier()
            return x, iters

        res = upcxx.run_spmd(body, n_procs, max_time=1e7)
        ref = spla.spsolve(sp.csc_matrix(a), b)
        x, iters = res[0]
        assert np.allclose(x, ref, atol=1e-7)
        assert 0 < iters <= a.shape[0] * 4
        # every rank agrees
        for other, _ in res[1:]:
            assert np.allclose(other, x)

    def test_random_spd(self):
        a = random_spd(40, density=0.1, seed=8)
        b = np.ones(40)

        def body():
            da = DistSparseMatrix(a)
            x_local, _ = cg_solve(da, b[da.lo : da.hi], tol=1e-12)
            x = gather_solution(da, x_local)
            upcxx.barrier()
            return x

        res = upcxx.run_spmd(body, 3, max_time=1e7)
        assert np.allclose(a @ res[0], b, atol=1e-6)

    def test_zero_rhs_trivial(self):
        a = laplacian_3d(3, 3, 2)

        def body():
            da = DistSparseMatrix(a)
            x_local, iters = cg_solve(da, np.zeros(da.hi - da.lo))
            upcxx.barrier()
            return float(np.abs(x_local).max() if len(x_local) else 0.0), iters

        res = upcxx.run_spmd(body, 2, max_time=1e7)
        assert res[0][0] == 0.0
        assert res[0][1] == 0  # converged immediately


class TestSampleSort:
    def _run(self, arrays):
        n = len(arrays)

        def body():
            me = upcxx.rank_me()
            part = sample_sort(np.asarray(arrays[me]))
            parts = upcxx.allgather(part).wait()
            upcxx.barrier()
            return [list(map(float, p)) for p in parts]

        return upcxx.run_spmd(body, n, max_time=1e7)[0]

    def test_sorts_random_keys(self):
        rng = np.random.default_rng(5)
        arrays = [rng.standard_normal(50) for _ in range(4)]
        parts = self._run(arrays)
        merged = [x for p in parts for x in p]
        assert merged == sorted(merged)
        assert sorted(merged) == sorted(float(x) for a in arrays for x in a)

    def test_partition_boundaries_ordered(self):
        rng = np.random.default_rng(6)
        arrays = [rng.integers(0, 1000, 64).astype(float) for _ in range(4)]
        parts = self._run(arrays)
        for p1, p2 in zip(parts, parts[1:]):
            if p1 and p2:
                assert p1[-1] <= p2[0]

    def test_skewed_input(self):
        """All keys on one rank still sort and distribute."""
        arrays = [np.arange(200, 0, -1, dtype=float), np.empty(0), np.empty(0)]
        parts = self._run(arrays)
        merged = [x for p in parts for x in p]
        assert merged == sorted(merged)
        assert len(merged) == 200

    def test_duplicate_keys(self):
        arrays = [np.full(30, 7.0), np.full(30, 7.0)]
        parts = self._run(arrays)
        assert sum(len(p) for p in parts) == 60
        assert all(x == 7.0 for p in parts for x in p)

    def test_single_rank(self):
        def body():
            out = sample_sort(np.array([3.0, 1.0, 2.0]))
            return list(out)

        assert upcxx.run_spmd(body, 1) == [[1.0, 2.0, 3.0]]

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(-1000, 1000), min_size=0, max_size=40),
            min_size=2,
            max_size=4,
        )
    )
    def test_property_total_order(self, chunks):
        arrays = [np.asarray(c, dtype=float) for c in chunks]
        parts = self._run(arrays)
        merged = [x for p in parts for x in p]
        assert merged == sorted(merged)
        assert sorted(merged) == sorted(float(x) for a in arrays for x in a)
