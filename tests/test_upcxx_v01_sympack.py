"""Tests for the v0.1 emulation layer and the symPACK skeleton."""

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.apps.sparse.extend_add import build_eadd_plan, serial_eadd_reference
from repro.apps.sparse.sympack import sympack_run
from repro.upcxx_v01 import (
    Event,
    SharedArray,
    allocate_remote,
    async_task,
    copy_blocking,
)


class TestEvent:
    def test_event_counting(self):
        def body():
            ev = Event(count=2)
            assert not ev.isdone()
            ev.signal(1)
            assert not ev.isdone()
            ev.signal(1)
            assert ev.isdone()
            ev.wait()  # immediate

        upcxx.run_spmd(body, 1)

    def test_over_signal_raises(self):
        def body():
            ev = Event(count=1)
            ev.signal(1)
            with pytest.raises(RuntimeError):
                ev.signal(1)

        upcxx.run_spmd(body, 1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Event(count=-1)


class TestAsync:
    def test_async_no_return_value(self):
        hits = []

        def body():
            if upcxx.rank_me() == 0:
                async_task(1, lambda x: hits.append(x), 42)
            upcxx.barrier()

        upcxx.run_spmd(body, 2)
        assert hits == [42]

    def test_async_with_ack_event(self):
        hits = []

        def body():
            if upcxx.rank_me() == 0:
                ev = Event()
                async_task(1, lambda: hits.append(upcxx.rank_me()), ack=ev)
                ev.wait()
                assert hits == [1]  # ack implies remote execution done
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_allocate_remote_blocking(self):
        def body():
            if upcxx.rank_me() == 0:
                t0 = upcxx.sim_now()
                g = allocate_remote(1, 256)
                dt = upcxx.sim_now() - t0
                assert g.rank == 1
                assert dt > 1e-6  # a full blocking round trip
            upcxx.barrier()

        upcxx.run_spmd(body, 2, ppn=1)

    def test_copy_blocking_moves_bytes(self):
        def body():
            me = upcxx.rank_me()
            g = upcxx.new_array(np.uint8, 16)
            ptrs = [upcxx.broadcast(g, root=r).wait() for r in range(2)]
            upcxx.barrier()
            if me == 0:
                g.local()[:] = np.frombuffer(b"0123456789abcdef", dtype=np.uint8)
                copy_blocking(ptrs[0], ptrs[1], 16)
            upcxx.barrier()
            return bytes(g.local())

        res = upcxx.run_spmd(body, 2)
        assert res[1] == b"0123456789abcdef"


class TestSharedArray:
    def test_put_get_across_ranks(self):
        def body():
            me = upcxx.rank_me()
            arr = SharedArray(10, dtype=np.int64)
            arr.put(me, me * 11)
            upcxx.barrier()
            vals = [arr.get(i) for i in range(upcxx.rank_n())]
            upcxx.barrier()
            return vals

        res = upcxx.run_spmd(body, 3)
        assert res[0] == [0, 11, 22]

    def test_owner_and_local_view(self):
        def body():
            arr = SharedArray(8, dtype=np.float64)
            assert arr.owner(0) == 0
            assert arr.owner(7) == upcxx.rank_n() - 1 if upcxx.rank_n() == 4 else True
            lv = arr.local_view()
            upcxx.barrier()
            return len(lv)

        res = upcxx.run_spmd(body, 4)
        assert sum(res) == 8

    def test_replicated_state_grows_with_p(self):
        """The documented non-scalability: O(P) metadata per rank."""
        sizes = {}

        def make_body(n):
            def body():
                arr = SharedArray(64)
                upcxx.barrier()
                sizes[n] = arr.replicated_state_bytes()

            return body

        upcxx.run_spmd(make_body(2), 2)
        upcxx.run_spmd(make_body(8), 8)
        assert sizes[8] == 4 * sizes[2]

    def test_bounds_checked(self):
        def body():
            arr = SharedArray(4)
            upcxx.barrier()
            with pytest.raises(IndexError):
                arr.get(4)
            upcxx.barrier()

        upcxx.run_spmd(body, 2)


class TestSympack:
    @pytest.fixture(scope="class")
    def plan(self):
        return build_eadd_plan(4, 4, 3, n_procs=4, leaf_size=6, block=4)

    def test_v1_backend_runs(self, plan):
        times = upcxx.run_spmd(lambda: sympack_run(plan, "v1"), 4)
        assert all(t > 0 for t in times)

    def test_v01_backend_runs(self, plan):
        times = upcxx.run_spmd(lambda: sympack_run(plan, "v01"), 4)
        assert all(t > 0 for t in times)

    def test_backends_nearly_identical(self, plan):
        """Fig. 9's claim: the two versions perform nearly the same."""
        t1 = max(upcxx.run_spmd(lambda: sympack_run(plan, "v1"), 4))
        t0 = max(upcxx.run_spmd(lambda: sympack_run(plan, "v01"), 4))
        assert abs(t1 - t0) / max(t1, t0) < 0.25

    def test_v1_not_slower(self, plan):
        """The new version "does not incur any measurable added overheads"."""
        t1 = max(upcxx.run_spmd(lambda: sympack_run(plan, "v1"), 4))
        t0 = max(upcxx.run_spmd(lambda: sympack_run(plan, "v01"), 4))
        assert t1 <= t0 * 1.05

    def test_unknown_backend_rejected(self, plan):
        from repro.sim.errors import RankFailure

        with pytest.raises(RankFailure) as ei:
            upcxx.run_spmd(lambda: sympack_run(plan, "v2"), 1)
        assert isinstance(ei.value.__cause__, ValueError)
