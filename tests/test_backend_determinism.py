"""Cross-backend determinism: all scheduler backends must be bit-identical.

The coroutine scheduler (PR 2) replaces the thread/condvar scheduler on
the hot path, and the sharded scheduler (PR 3) distributes the coroutine
machinery across forked worker processes — but every backend must
preserve the simulation *exactly*: same simulated times, same results,
same trace — down to the last bit.  These tests run identical workloads
on the backends and compare:

- Fig. 3a blocking-put latency series (float series equality),
- DHT insert totals (elapsed simulated time per rank),
- ``TraceBuffer.fingerprint()`` digests for coroutines vs threads, and
  ``canonical_fingerprint()`` (stable (time, rank) order — invariant to
  the backend's legitimate same-instant interleaving freedom) for the
  three-way comparison,
- scheduler counters: events posted/fired match on every backend (each
  logical event exists exactly once, on exactly one shard); ``switches``
  match between coroutines and threads but not for sharded (each worker
  dispatches only its own ranks, so the yield pattern differs).

Sharded-specific rules exercised here: SPMD bodies must *return* results
(worker-process side effects don't reach the parent), and raw
cross-shard wakes are an error rather than a silent no-op.

Also here: the lost-wakeup regression test for sticky ``pending_wake``
consumption on all backends (wakes arriving while a rank is runnable
must be drained in timestamp order, never dropped), and the sharded
lookahead-boundary regression (an event landing *exactly* on a window
edge must wait for the next horizon round, at an unchanged timestamp).
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.sim.coop import Scheduler, current_scheduler, run_spmd
from repro.util.trace import TraceBuffer

BACKENDS = ("coroutines", "threads")
ALL_BACKENDS = ("coroutines", "threads", "sharded")


@contextmanager
def _shards(n: int):
    """Force the sharded backend to use ``n`` worker processes."""
    from repro.sim.shard import SHARDS_ENV

    old = os.environ.get(SHARDS_ENV)
    os.environ[SHARDS_ENV] = str(n)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(SHARDS_ENV, None)
        else:
            os.environ[SHARDS_ENV] = old


def _both_backends(fn):
    """Run ``fn(backend)`` for both backends, return {backend: result}."""
    return {b: fn(b) for b in BACKENDS}


def _all_backends(fn, n_shards: int = 2):
    """Run ``fn(backend)`` on all three backends, sharded with ``n_shards``."""
    out = {b: fn(b) for b in BACKENDS}
    with _shards(n_shards):
        out["sharded"] = fn("sharded")
    return out


# ----------------------------------------------------------- Fig. 3a series
def _fig3a_series(backend):
    sizes = [8, 64, 512, 4096, 65536]
    out = {}

    def body():
        me = upcxx.rank_me()
        landing = upcxx.new_array(np.uint8, max(sizes))
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        if me == 0:
            for size in sizes:
                payload = bytes(size)
                t0 = upcxx.sim_now()
                for _ in range(4):
                    upcxx.rput(payload, dest).wait()
                out[size] = upcxx.sim_now() - t0
        upcxx.barrier()

    stats: dict = {}
    upcxx.run_spmd(body, 2, platform="haswell", ppn=1, backend=backend, sched_stats=stats)
    return out, stats


def test_fig3a_latency_series_bit_identical():
    got = _both_backends(_fig3a_series)
    series_c, stats_c = got["coroutines"]
    series_t, stats_t = got["threads"]
    assert series_c == series_t  # float == float: bit-identical or bust
    assert stats_c["events_fired"] == stats_t["events_fired"]
    assert stats_c["switches"] == stats_t["switches"]


# --------------------------------------------------------------- DHT totals
def _dht_totals(backend):
    from repro.apps.dht import DhtRmaLz

    def body():
        dht = DhtRmaLz()
        rng = upcxx.runtime_here().rng.spawn("dht-bench")
        payload = bytes(1024)
        upcxx.barrier()
        t0 = upcxx.sim_now()
        for _ in range(6):
            dht.insert(rng.key64(), payload).wait()
        upcxx.barrier()
        return upcxx.sim_now() - t0

    return upcxx.run_spmd(body, 16, platform="haswell", backend=backend)


def test_dht_insert_totals_bit_identical():
    got = _both_backends(_dht_totals)
    assert got["coroutines"] == got["threads"]


# ------------------------------------------------------------ trace digests
def _traced_run(backend):
    trace = TraceBuffer()

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        fut = upcxx.rpc((me + 1) % n, lambda: upcxx.rank_me())
        assert fut.wait() == (me + 1) % n
        upcxx.barrier()

    upcxx.run_spmd(body, 8, platform="haswell", backend=backend, trace=trace)
    return trace


def test_trace_digests_bit_identical():
    got = _both_backends(_traced_run)
    assert len(got["coroutines"]) > 0
    assert len(got["coroutines"]) == len(got["threads"])
    assert got["coroutines"].fingerprint() == got["threads"].fingerprint()


# ------------------------------------------------------ scheduler-level runs
def _mixed_wake_run(backend):
    """Raw scheduler workload mixing sleeps, posts, and cross-rank wakes."""
    log = []

    def body(r):
        s = current_scheduler()
        s.charge(1e-6 * (r + 1))
        s.sleep(5e-6)
        s.charge(2e-6)
        if r == 0:
            for other in range(1, s.n_ranks):
                # fixed wake times: now() is rank-context-only, events are not
                s.post(1e-6 * other, lambda o=other: s.wake(o, 15e-6 + 1e-6 * o))
        s.sleep(20e-6)
        log.append((r, s.now()))
        return s.now()

    sched = Scheduler(4, backend=backend)
    out = sched.run(body)
    return out, sorted(log), sched.stats()


def test_scheduler_mixed_wakes_bit_identical():
    got = _both_backends(_mixed_wake_run)
    out_c, log_c, stats_c = got["coroutines"]
    out_t, log_t, stats_t = got["threads"]
    assert out_c == out_t
    assert log_c == log_t
    assert stats_c["switches"] == stats_t["switches"]
    assert stats_c["events_fired"] == stats_t["events_fired"]


# ------------------------------------------------------- lost-wakeup guard
@pytest.mark.parametrize("backend", BACKENDS)
def test_pending_wakes_drain_in_timestamp_order(backend):
    """Wakes landing while a rank is RUNNING must not be lost or reordered.

    Rank 1 receives two out-of-order wakes (t=30us then t=10us) while it
    is still running.  When it then blocks, the *earlier* wake must be
    consumed first: rank 1 resumes at 10us, not 30us.  Before the
    sort-before-consume fix, the wake list was consumed in arrival order
    and the 10us wake could be shadowed by the 30us one.
    """
    resumes = []

    def body(r):
        s = current_scheduler()
        if r == 0:
            # deliver wakes to rank 1 while it is still RUNNING
            s.post(5e-6, lambda: s.wake(1, 30e-6))
            s.post(6e-6, lambda: s.wake(1, 10e-6))
            s.sleep(50e-6)
        else:
            s.charge(8e-6)  # stay RUNNING past both wake deliveries
            s.block("first wait")
            resumes.append(s.now())
            s.block("second wait")
            resumes.append(s.now())
        return s.now()

    run_spmd(body, 2, backend=backend)
    assert resumes == [10e-6, 30e-6]


@pytest.mark.parametrize("backend", BACKENDS)
def test_spurious_past_wake_returns_immediately(backend):
    """A pending wake at or before the rank's clock makes block() a no-op."""

    def body(r):
        s = current_scheduler()
        if r == 0:
            s.post(1e-6, lambda: s.wake(1, 2e-6))
            s.sleep(20e-6)
        else:
            s.charge(10e-6)  # wake lands while running, already in the past
            s.block("should not sleep")
            assert s.now() == 10e-6  # unchanged: spurious return
        return s.now()

    run_spmd(body, 2, backend=backend)


def test_backend_factory_and_env(monkeypatch):
    from repro.sim import coop

    assert Scheduler(2, backend="threads").backend == "threads"
    assert Scheduler(2, backend="coroutines").backend == "coroutines"
    assert Scheduler(2, backend="sharded").backend == "sharded"
    assert isinstance(Scheduler(2, backend="threads"), Scheduler)
    assert isinstance(Scheduler(2, backend="sharded"), Scheduler)
    monkeypatch.setenv(coop.BACKEND_ENV, "threads")
    assert Scheduler(2).backend == "threads"
    monkeypatch.delenv(coop.BACKEND_ENV)
    assert Scheduler(2).backend == coop.DEFAULT_BACKEND
    with pytest.raises(ValueError):
        Scheduler(2, backend="fibers-from-the-future")


# ================================================== three-way sharded matrix
def _fig3a_series_returning(backend):
    """Fig. 3a series where the measuring rank *returns* its results —
    the sharded-compatible idiom (worker side effects stay in the worker,
    as in real process-per-rank UPC++)."""
    sizes = [8, 64, 512, 4096, 65536]

    def body():
        me = upcxx.rank_me()
        landing = upcxx.new_array(np.uint8, max(sizes))
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        out = {}
        if me == 0:
            for size in sizes:
                payload = bytes(size)
                t0 = upcxx.sim_now()
                for _ in range(4):
                    upcxx.rput(payload, dest).wait()
                out[size] = upcxx.sim_now() - t0
        upcxx.barrier()
        return (out, upcxx.sim_now())

    stats: dict = {}
    results = upcxx.run_spmd(
        body, 2, platform="haswell", ppn=1, backend=backend, sched_stats=stats
    )
    return results, stats


def test_fig3a_series_three_way_bit_identical():
    got = _all_backends(_fig3a_series_returning, n_shards=2)
    res_c, stats_c = got["coroutines"]
    res_t, stats_t = got["threads"]
    res_s, stats_s = got["sharded"]
    assert res_c == res_t == res_s  # float == float: bit-identical or bust
    assert stats_c["events_fired"] == stats_t["events_fired"] == stats_s["events_fired"]
    assert stats_c["events_posted"] == stats_t["events_posted"] == stats_s["events_posted"]
    # switches are an intra-process dispatch property: identical between the
    # single-process backends, legitimately different under sharding
    assert stats_c["switches"] == stats_t["switches"]
    assert stats_s["n_shards"] == 2


def _dht_totals_multishard(backend):
    """DHT inserts across 4 nodes (ppn=4): real cross-shard AM + RMA mix."""
    from repro.apps.dht import DhtRmaLz

    def body():
        dht = DhtRmaLz()
        rng = upcxx.runtime_here().rng.spawn("dht-bench")
        payload = bytes(1024)
        upcxx.barrier()
        t0 = upcxx.sim_now()
        for _ in range(6):
            dht.insert(rng.key64(), payload).wait()
        upcxx.barrier()
        return upcxx.sim_now() - t0

    stats: dict = {}
    totals = upcxx.run_spmd(
        body, 16, platform="haswell", ppn=4, backend=backend, sched_stats=stats
    )
    return totals, stats


def test_dht_totals_three_way_bit_identical():
    got = _all_backends(_dht_totals_multishard, n_shards=4)
    tot_c, stats_c = got["coroutines"]
    tot_t, _ = got["threads"]
    tot_s, stats_s = got["sharded"]
    assert tot_c == tot_t == tot_s
    assert stats_c["events_fired"] == stats_s["events_fired"]
    assert stats_s["n_shards"] == 4
    # per-shard accounting must decompose the global totals exactly
    per_shard = stats_s["per_shard"]
    assert len(per_shard) == 4
    assert sum(s["events_fired"] for s in per_shard) == stats_s["events_fired"]
    assert sum(s["switches"] for s in per_shard) == stats_s["switches"]


def _traced_run_canonical(backend):
    trace = TraceBuffer()

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        fut = upcxx.rpc((me + 1) % n, lambda: upcxx.rank_me())
        assert fut.wait() == (me + 1) % n
        upcxx.barrier()
        return upcxx.sim_now()

    results = upcxx.run_spmd(body, 8, platform="haswell", ppn=2, backend=backend, trace=trace)
    return results, trace


def test_trace_canonical_digests_three_way():
    got = _all_backends(_traced_run_canonical, n_shards=2)
    res = {b: r for b, (r, _) in got.items()}
    assert res["coroutines"] == res["threads"] == res["sharded"]
    traces = {b: t for b, (_, t) in got.items()}
    assert len(traces["coroutines"]) > 0
    assert len(traces["coroutines"]) == len(traces["threads"]) == len(traces["sharded"])
    fp_c = traces["coroutines"].canonical_fingerprint()
    assert fp_c == traces["threads"].canonical_fingerprint()
    assert fp_c == traces["sharded"].canonical_fingerprint()


@pytest.mark.parametrize("backend", ["sharded"])
def test_pending_wakes_drain_in_timestamp_order_sharded(backend):
    """Lost-wakeup guard under the sharded backend (single shard: the raw
    scheduler has no machine topology, so the job degenerates to one
    worker — the windowed dispatch/park machinery still runs)."""

    def body(r):
        s = current_scheduler()
        if r == 0:
            s.post(5e-6, lambda: s.wake(1, 30e-6))
            s.post(6e-6, lambda: s.wake(1, 10e-6))
            s.sleep(50e-6)
            return None
        s.charge(8e-6)  # stay RUNNING past both wake deliveries
        resumes = []
        s.block("first wait")
        resumes.append(s.now())
        s.block("second wait")
        resumes.append(s.now())
        return resumes

    out = run_spmd(body, 2, backend=backend)
    assert out[1] == [10e-6, 30e-6]


def test_sharded_window_edge_event_bit_identical():
    """An event landing *exactly* on a window bound (t == k * lookahead)
    must not fire in that window (strict ``<`` gating) and must fire at an
    unchanged timestamp once the bound advances — the classic conservative
    -DES off-by-one.  Both ranks' final clocks must match the coroutine
    backend exactly."""
    from repro.gasnet.machine import Machine
    from repro.gasnet.network import AriesNetwork

    net = AriesNetwork()
    lookahead = net.latency_oneway

    def body_sharded(r):
        s = current_scheduler()
        if r == 0:
            for k in (1, 2, 3):
                # cross-shard wake envelopes firing exactly at k * lookahead
                s.emit_envelope(1, k * lookahead, "wake", 1)
            s.sleep(10 * lookahead)
        else:
            for _ in range(3):
                s.block("edge wait")
        return s.now()

    def body_coro(r):
        s = current_scheduler()
        if r == 0:
            for k in (1, 2, 3):
                s.post_at(k * lookahead, lambda k=k: s.wake(1, k * lookahead))
            s.sleep(10 * lookahead)
        else:
            for _ in range(3):
                s.block("edge wait")
        return s.now()

    ref = Scheduler(2, backend="coroutines").run(body_coro)
    with _shards(2):
        sched = Scheduler(2, backend="sharded")
        sched.configure_sharding(Machine.for_ranks(2, 1, name="haswell"), net)
        out = sched.run(body_sharded)
        assert sched.stats()["n_shards"] == 2
    assert out == ref
    assert out[1] == 3 * lookahead  # resumed by the last edge wake, exactly


def test_sharded_cross_shard_raw_wake_raises():
    """A raw scheduler wake aimed at a rank on another shard must fail
    loudly (it cannot honor the lookahead contract), not silently no-op."""
    from repro.gasnet.machine import Machine
    from repro.gasnet.network import AriesNetwork
    from repro.sim.errors import RankFailure, SimError

    def body(r):
        s = current_scheduler()
        if r == 0:
            s.charge(1e-6)
            s.wake(1, 5e-6)  # rank 1 lives on the other shard
            s.sleep(1e-5)
        else:
            s.block("waiting")
        return r

    with _shards(2):
        sched = Scheduler(2, backend="sharded")
        sched.configure_sharding(Machine.for_ranks(2, 1, name="haswell"), AriesNetwork())
        with pytest.raises((SimError, RankFailure), match="cross-shard wake"):
            sched.run(body)


# ------------------------------------------- idle-peer reactivation motif
def _mixed_collectives_run(backend):
    """The quickstart motif: a mix of collectives, chained RMA, lambda RPC
    and promise-tracked puts across a 2-node machine.  This pattern makes a
    shard's entire peer go momentarily idle (all ranks blocked, no events)
    while the other shard is still injecting traffic that will reactivate
    it — the exact shape where an unsound infinite window bound lets ranks
    poll past in-flight cross-shard replies and diverge from the
    single-process backends by a few progress charges."""

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        right = (me + 1) % n
        cell = upcxx.new_array(np.float64, 4)
        cell.local()[:] = me
        cells = [upcxx.broadcast(cell, root=r).wait() for r in range(n)]
        upcxx.barrier()
        upcxx.rput(np.full(4, 100.0 + me), cells[right]).then(lambda: None).wait()
        upcxx.barrier()
        upcxx.rget(cell).wait()
        answer = upcxx.rpc(right, lambda a, b: a * b, 6, 7).wait()
        assert answer == 42
        everyone = upcxx.when_all(*[upcxx.rpc(r, upcxx.rank_me) for r in range(n)]).wait()
        assert list(everyone) == list(range(n))
        p = upcxx.Promise()
        for i in range(8):
            upcxx.rput(float(i), cells[right][i % 4], cx=upcxx.operation_cx.as_promise(p))
        p.finalize().wait()
        total = upcxx.reduce_all(me, "+").wait()
        upcxx.barrier()
        return (total, upcxx.sim_now())

    return upcxx.run_spmd(body, 4, platform="haswell", ppn=2, backend=backend)


def test_idle_peer_reactivation_three_way_bit_identical():
    got = _all_backends(_mixed_collectives_run)
    assert got["coroutines"] == got["threads"]
    assert got["coroutines"] == got["sharded"]


# ----------------------------------------------------- causal span tracing
def _span_mix_run(backend):
    """RMA + RPC mix with span tracing on; returns (results, fingerprint,
    n_spans).  Spans must be bit-identical on every backend: sids are
    minted per-rank, records are canonically merged, and the fingerprint
    is a content hash (PYTHONHASHSEED-independent)."""
    from repro.util.spans import SpanBuffer

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        peer = (me + 1) % n
        cell = upcxx.new_array(np.uint8, 4096)
        cells = [upcxx.broadcast(cell, root=r).wait() for r in range(n)]
        upcxx.barrier()
        out = []
        for i in range(3):
            upcxx.rput(bytes(256 * (i + 1)), cells[peer]).wait()
            got = upcxx.rget(cells[peer], 16).wait()
            out.append(int(got.sum()))
        answer = upcxx.rpc(peer, lambda a, b: a + b, me, 7).wait()
        out.append(answer)
        upcxx.barrier()
        return (tuple(out), upcxx.sim_now())

    spans = SpanBuffer()
    results = upcxx.run_spmd(body, 4, platform="haswell", ppn=2, spans=spans, backend=backend)
    return results, spans.fingerprint(), len(spans)


def test_span_fingerprints_three_way_bit_identical():
    got = _all_backends(_span_mix_run)
    res_c, fp_c, n_c = got["coroutines"]
    res_t, fp_t, n_t = got["threads"]
    res_s, fp_s, n_s = got["sharded"]
    assert res_c == res_t == res_s  # simulated results first: same physics
    assert n_c > 0
    assert n_c == n_t == n_s
    assert fp_c == fp_t == fp_s  # span streams bit-identical across backends


# ----------------------------------- adaptive-lookahead invariance (v2)
@contextmanager
def _lookahead_mode(mode: str):
    from repro.sim.shard import LOOKAHEAD_ENV

    old = os.environ.get(LOOKAHEAD_ENV)
    os.environ[LOOKAHEAD_ENV] = mode
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(LOOKAHEAD_ENV, None)
        else:
            os.environ[LOOKAHEAD_ENV] = old


def test_adaptive_lookahead_bit_identical_to_fixed():
    """Protocol v2's window bound gates only *when* a worker pauses to
    exchange, never the (fire_time, stamp) execution order — so adaptive
    lookahead must reproduce the fixed-lookahead (v1-bound) run exactly:
    same results, same span fingerprints, on all three backends.  The
    only thing allowed to change is the number of windows."""
    runs = {}
    window_stats = {}
    for mode in ("fixed", "adaptive"):
        with _lookahead_mode(mode):
            runs[mode] = _all_backends(_span_mix_run)
            with _shards(2):
                _, st = _fig3a_series_returning("sharded")
            window_stats[mode] = st
    for mode, got in runs.items():
        assert got["coroutines"] == got["threads"] == got["sharded"], mode
    assert runs["fixed"] == runs["adaptive"]
    # the knob is real: both modes ran, surfaced in stats, and widening
    # the idle provision can only merge windows, never add them
    assert window_stats["fixed"]["lookahead_mode"] == "fixed"
    assert window_stats["adaptive"]["lookahead_mode"] == "adaptive"
    assert window_stats["fixed"]["lookahead_mult_peak"] == 2.0
    assert window_stats["adaptive"]["windows"] <= window_stats["fixed"]["windows"]


def test_lookahead_mode_rejects_garbage():
    from repro.sim.errors import SimError

    with _lookahead_mode("turbo"):
        with pytest.raises(SimError, match="adaptive"):
            Scheduler(2, backend="sharded")


def test_spans_off_by_default_leaves_times_unchanged():
    """Enabling span tracing must not perturb a single simulated time."""
    from repro.util.spans import SpanBuffer

    def run(spans):
        def body():
            me = upcxx.rank_me()
            landing = upcxx.new_array(np.uint8, 1024)
            dest = upcxx.broadcast(landing, root=1).wait()
            upcxx.barrier()
            if me == 0:
                for _ in range(3):
                    upcxx.rput(bytes(512), dest).wait()
            upcxx.barrier()
            return upcxx.sim_now()

        return upcxx.run_spmd(body, 2, platform="haswell", ppn=1, spans=spans)

    base = run(None)
    traced = run(SpanBuffer())
    disabled = run(SpanBuffer(enabled=False))
    assert traced == base
    assert disabled == base


# ------------------------------------- sharded metrics merge (satellite)
def _metrics_mix_run(backend):
    """DHT-flavored run with metrics on; returns (results, metrics)."""
    from repro.apps.dht import DhtRmaLz
    from repro.util.metrics import Metrics

    def body():
        dht = DhtRmaLz()
        rng = upcxx.runtime_here().rng.spawn("dht-bench")
        payload = bytes(1024)
        upcxx.barrier()
        for _ in range(4):
            dht.insert(rng.key64(), payload).wait()
        upcxx.barrier()
        return upcxx.sim_now()

    metrics = Metrics()
    results = upcxx.run_spmd(
        body, 8, platform="haswell", ppn=4, metrics=metrics, backend=backend
    )
    return results, metrics


def test_sharded_metrics_merge_matches_coroutines():
    """Metrics collected in forked shard workers and merged at the parent
    must equal the single-process collection exactly: same per-rank
    queue-depth series, same attentiveness gaps, byte-identical export."""
    from repro.util.trace_export import dumps_metrics

    res_c, m_c = _metrics_mix_run("coroutines")
    with _shards(2):
        res_s, m_s = _metrics_mix_run("sharded")
    assert res_c == res_s
    # the headline attentiveness number survives the merge bit-for-bit
    gap_c = m_c.max_attentiveness_gap()
    assert gap_c > 0.0
    assert m_s.max_attentiveness_gap() == gap_c
    # every rank's queue-depth series made it home from its shard
    ranks_c = {rm.rank: rm for rm in m_c.ranks}
    ranks_s = {rm.rank: rm for rm in m_s.ranks}
    assert set(ranks_s) == set(ranks_c) == set(range(8))
    for r in range(8):
        assert len(ranks_s[r].queue_samples) > 0
        assert ranks_s[r].queue_samples == ranks_c[r].queue_samples
        assert ranks_s[r].max_gap == ranks_c[r].max_gap
    # and the full canonical export is byte-identical
    assert dumps_metrics(m_s) == dumps_metrics(m_c)
