"""Cross-backend determinism: coroutines vs threads must be bit-identical.

The coroutine scheduler (PR 2) replaces the thread/condvar scheduler on
the hot path but must preserve the simulation *exactly*: same simulated
times, same results, same trace — down to the last bit.  These tests run
identical workloads on both backends and compare:

- Fig. 3a blocking-put latency series (float series equality),
- DHT insert totals (elapsed simulated time per rank),
- ``TraceBuffer.fingerprint()`` digests (order-sensitive hash of every
  scheduler block/resume record),
- scheduler counters (switches, events fired — the execution schedule
  itself, not just its outcome).

Also here: the lost-wakeup regression test for sticky ``pending_wake``
consumption, on both backends (wakes arriving while a rank is runnable
must be drained in timestamp order, never dropped).
"""

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.sim.coop import Scheduler, current_scheduler, run_spmd
from repro.util.trace import TraceBuffer

BACKENDS = ("coroutines", "threads")


def _both_backends(fn):
    """Run ``fn(backend)`` for both backends, return {backend: result}."""
    return {b: fn(b) for b in BACKENDS}


# ----------------------------------------------------------- Fig. 3a series
def _fig3a_series(backend):
    sizes = [8, 64, 512, 4096, 65536]
    out = {}

    def body():
        me = upcxx.rank_me()
        landing = upcxx.new_array(np.uint8, max(sizes))
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        if me == 0:
            for size in sizes:
                payload = bytes(size)
                t0 = upcxx.sim_now()
                for _ in range(4):
                    upcxx.rput(payload, dest).wait()
                out[size] = upcxx.sim_now() - t0
        upcxx.barrier()

    stats: dict = {}
    upcxx.run_spmd(body, 2, platform="haswell", ppn=1, backend=backend, sched_stats=stats)
    return out, stats


def test_fig3a_latency_series_bit_identical():
    got = _both_backends(_fig3a_series)
    series_c, stats_c = got["coroutines"]
    series_t, stats_t = got["threads"]
    assert series_c == series_t  # float == float: bit-identical or bust
    assert stats_c["events_fired"] == stats_t["events_fired"]
    assert stats_c["switches"] == stats_t["switches"]


# --------------------------------------------------------------- DHT totals
def _dht_totals(backend):
    from repro.apps.dht import DhtRmaLz

    def body():
        dht = DhtRmaLz()
        rng = upcxx.runtime_here().rng.spawn("dht-bench")
        payload = bytes(1024)
        upcxx.barrier()
        t0 = upcxx.sim_now()
        for _ in range(6):
            dht.insert(rng.key64(), payload).wait()
        upcxx.barrier()
        return upcxx.sim_now() - t0

    return upcxx.run_spmd(body, 16, platform="haswell", backend=backend)


def test_dht_insert_totals_bit_identical():
    got = _both_backends(_dht_totals)
    assert got["coroutines"] == got["threads"]


# ------------------------------------------------------------ trace digests
def _traced_run(backend):
    trace = TraceBuffer()

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        fut = upcxx.rpc((me + 1) % n, lambda: upcxx.rank_me())
        assert fut.wait() == (me + 1) % n
        upcxx.barrier()

    upcxx.run_spmd(body, 8, platform="haswell", backend=backend, trace=trace)
    return trace


def test_trace_digests_bit_identical():
    got = _both_backends(_traced_run)
    assert len(got["coroutines"]) > 0
    assert len(got["coroutines"]) == len(got["threads"])
    assert got["coroutines"].fingerprint() == got["threads"].fingerprint()


# ------------------------------------------------------ scheduler-level runs
def _mixed_wake_run(backend):
    """Raw scheduler workload mixing sleeps, posts, and cross-rank wakes."""
    log = []

    def body(r):
        s = current_scheduler()
        s.charge(1e-6 * (r + 1))
        s.sleep(5e-6)
        s.charge(2e-6)
        if r == 0:
            for other in range(1, s.n_ranks):
                # fixed wake times: now() is rank-context-only, events are not
                s.post(1e-6 * other, lambda o=other: s.wake(o, 15e-6 + 1e-6 * o))
        s.sleep(20e-6)
        log.append((r, s.now()))
        return s.now()

    sched = Scheduler(4, backend=backend)
    out = sched.run(body)
    return out, sorted(log), sched.stats()


def test_scheduler_mixed_wakes_bit_identical():
    got = _both_backends(_mixed_wake_run)
    out_c, log_c, stats_c = got["coroutines"]
    out_t, log_t, stats_t = got["threads"]
    assert out_c == out_t
    assert log_c == log_t
    assert stats_c["switches"] == stats_t["switches"]
    assert stats_c["events_fired"] == stats_t["events_fired"]


# ------------------------------------------------------- lost-wakeup guard
@pytest.mark.parametrize("backend", BACKENDS)
def test_pending_wakes_drain_in_timestamp_order(backend):
    """Wakes landing while a rank is RUNNING must not be lost or reordered.

    Rank 1 receives two out-of-order wakes (t=30us then t=10us) while it
    is still running.  When it then blocks, the *earlier* wake must be
    consumed first: rank 1 resumes at 10us, not 30us.  Before the
    sort-before-consume fix, the wake list was consumed in arrival order
    and the 10us wake could be shadowed by the 30us one.
    """
    resumes = []

    def body(r):
        s = current_scheduler()
        if r == 0:
            # deliver wakes to rank 1 while it is still RUNNING
            s.post(5e-6, lambda: s.wake(1, 30e-6))
            s.post(6e-6, lambda: s.wake(1, 10e-6))
            s.sleep(50e-6)
        else:
            s.charge(8e-6)  # stay RUNNING past both wake deliveries
            s.block("first wait")
            resumes.append(s.now())
            s.block("second wait")
            resumes.append(s.now())
        return s.now()

    run_spmd(body, 2, backend=backend)
    assert resumes == [10e-6, 30e-6]


@pytest.mark.parametrize("backend", BACKENDS)
def test_spurious_past_wake_returns_immediately(backend):
    """A pending wake at or before the rank's clock makes block() a no-op."""

    def body(r):
        s = current_scheduler()
        if r == 0:
            s.post(1e-6, lambda: s.wake(1, 2e-6))
            s.sleep(20e-6)
        else:
            s.charge(10e-6)  # wake lands while running, already in the past
            s.block("should not sleep")
            assert s.now() == 10e-6  # unchanged: spurious return
        return s.now()

    run_spmd(body, 2, backend=backend)


def test_backend_factory_and_env(monkeypatch):
    from repro.sim import coop

    assert Scheduler(2, backend="threads").backend == "threads"
    assert Scheduler(2, backend="coroutines").backend == "coroutines"
    assert isinstance(Scheduler(2, backend="threads"), Scheduler)
    monkeypatch.setenv(coop.BACKEND_ENV, "threads")
    assert Scheduler(2).backend == "threads"
    monkeypatch.delenv(coop.BACKEND_ENV)
    assert Scheduler(2).backend == coop.DEFAULT_BACKEND
    with pytest.raises(ValueError):
        Scheduler(2, backend="fibers-from-the-future")
