"""Tests for the team-parallel (2-D block-cyclic) numeric factorization."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

import repro.upcxx as upcxx
from repro.apps.sparse.numeric import build_cholesky_plan, factor_and_solve
from repro.apps.sparse.numeric2d import (
    build_cholesky_2d_plan,
    cholesky_factor_2d,
    factor_and_solve_2d,
)


def _solve(plan, b, n_procs):
    res = upcxx.run_spmd(lambda: factor_and_solve_2d(plan, b), n_procs, max_time=1e7)
    for r in res[1:]:
        assert np.allclose(res[0], r)
    return res[0]


class TestFactor2D:
    @pytest.mark.parametrize("n_procs,block", [(1, 8), (2, 8), (4, 4), (4, 16)])
    def test_solves_laplacian(self, n_procs, block):
        plan = build_cholesky_2d_plan(4, 4, 3, n_procs=n_procs, leaf_size=8, block=block)
        rng = np.random.default_rng(5)
        b = rng.standard_normal(plan.n)
        x = _solve(plan, b, n_procs)
        ref = spla.spsolve(sp.csc_matrix(plan.a), b)
        assert np.allclose(x, ref, atol=1e-8), f"max err {np.abs(x - ref).max()}"

    def test_block_not_dividing_separators(self):
        """Separator sizes rarely align with the block size: the padding
        path must keep the answer exact."""
        plan = build_cholesky_2d_plan(5, 4, 3, n_procs=4, leaf_size=10, block=7)
        b = np.arange(plan.n, dtype=float)
        x = _solve(plan, b, 4)
        r = plan.a @ x - b
        assert np.linalg.norm(r) / np.linalg.norm(b) < 1e-10

    def test_larger_grid(self):
        plan = build_cholesky_2d_plan(6, 6, 4, n_procs=8, leaf_size=20, block=8)
        rng = np.random.default_rng(17)
        b = rng.standard_normal(plan.n)
        x = _solve(plan, b, 8)
        ref = spla.spsolve(sp.csc_matrix(plan.a), b)
        assert np.allclose(x, ref, atol=1e-7)

    def test_matches_lead_only_solver(self):
        """Same system: team-parallel and lead-only answers must agree."""
        grid = (4, 4, 2)
        b = np.linspace(-1, 1, 32)
        plan1 = build_cholesky_plan(*grid, n_procs=4, leaf_size=8)
        plan2 = build_cholesky_2d_plan(*grid, n_procs=4, leaf_size=8, block=8)
        x1 = upcxx.run_spmd(lambda: factor_and_solve(plan1, b), 4, max_time=1e7)[0]
        x2 = _solve(plan2, b, 4)
        assert np.allclose(x1, x2, atol=1e-9)

    def test_factor_pieces_on_leads(self):
        plan = build_cholesky_2d_plan(4, 3, 2, n_procs=4, leaf_size=8, block=8)
        collected = {}

        def body():
            state = cholesky_factor_2d(plan)
            collected[upcxx.rank_me()] = set(state.factors)
            upcxx.barrier()

        upcxx.run_spmd(body, 4, max_time=1e7)
        # every front's factor lives exactly on its team lead
        for nid, lead in plan.owner.items():
            assert nid in collected[lead]
            for r, owned in collected.items():
                if r != lead:
                    assert nid not in owned

    def test_deterministic(self):
        plan = build_cholesky_2d_plan(4, 4, 2, n_procs=4, leaf_size=8, block=8)
        b = np.ones(plan.n)
        assert np.array_equal(_solve(plan, b, 4), _solve(plan, b, 4))

    def test_team_parallel_beats_lead_only_on_large_fronts(self):
        """The point of 2-D fronts: for fronts big enough that flops (n^3)
        dominate panel traffic (n^2), the team-parallel factorization beats
        the lead-only one.  A huge leaf_size makes the whole 8x8x8 domain a
        single dense front of 512 columns — the pure dense-kernel case.
        (At toy front sizes the lead-only variant legitimately wins, which
        is why real solvers only switch to 2-D fronts above a size cutoff.)
        """
        grid = (8, 8, 8)
        b = np.ones(512)
        times = {}
        for label, plan, runner in (
            ("lead", build_cholesky_plan(*grid, n_procs=8, leaf_size=10_000),
             factor_and_solve),
            ("2d", build_cholesky_2d_plan(*grid, n_procs=8, leaf_size=10_000, block=64),
             factor_and_solve_2d),
        ):
            out = {}

            def body(plan=plan, runner=runner):
                upcxx.barrier()
                t0 = upcxx.sim_now()
                x = runner(plan, b)
                upcxx.barrier()
                out["t"] = upcxx.sim_now() - t0
                out["x"] = x

            upcxx.run_spmd(body, 8, max_time=1e7)
            times[label] = out["t"]
            # same (correct) answer from both
            import scipy.sparse as sp
            import scipy.sparse.linalg as spla

            assert np.allclose(out["x"], spla.spsolve(sp.csc_matrix(plan.a), b), atol=1e-7)
        assert times["2d"] < times["lead"]
