"""Tests for the cooperative SPMD scheduler.

These exercise the baton discipline: deterministic ordering, charge/yield
semantics, message-style wakeups, deadlock detection, and failure
propagation.
"""

import pytest

from repro.sim.coop import Scheduler, current_rank, current_scheduler, run_spmd
from repro.sim.errors import DeadlockError, RankFailure
from repro.util.trace import TraceBuffer


def test_single_rank_runs_and_returns():
    assert run_spmd(lambda r: r + 100, 1) == [100]


def test_all_ranks_run():
    assert run_spmd(lambda r: r * r, 8) == [r * r for r in range(8)]


def test_current_rank_and_scheduler_visible():
    def body(r):
        assert current_rank() == r
        assert current_scheduler() is not None
        return current_scheduler().now()

    assert run_spmd(body, 4) == [0.0] * 4


def test_charge_advances_clock():
    def body(r):
        s = current_scheduler()
        s.charge(1e-6)
        s.charge(2e-6)
        return round(s.now() * 1e9)

    assert run_spmd(body, 2) == [3000, 3000]


def test_charge_rejects_negative():
    def body(r):
        current_scheduler().charge(-1.0)

    with pytest.raises(RankFailure):
        run_spmd(body, 1)


def test_time_ordered_interleaving():
    """Ranks with different charge patterns interleave in clock order."""
    log = []

    def body(r):
        s = current_scheduler()
        # rank 0 takes 1us steps, rank 1 takes 3us steps
        step = 1e-6 if r == 0 else 3e-6
        for _i in range(3):
            s.charge(step)
            log.append((round(s.now() * 1e9), r))

    run_spmd(body, 2)
    assert log == sorted(log)


def test_sleep_blocks_for_simulated_time():
    def body(r):
        s = current_scheduler()
        s.sleep(5e-6 * (r + 1))
        return round(s.now() * 1e6)

    assert run_spmd(body, 3) == [5, 10, 15]


def test_event_delivery_and_wake():
    """A simple message queue built directly on the scheduler primitives."""

    def body(r):
        s = current_scheduler()
        env = s.rank_env()
        env.setdefault("inbox", [])
        if r == 0:
            # send a message to rank 1 arriving at t=2us
            def deliver():
                s.rank_env(1)["inbox"].append("hello")
                s.wake(1, 2e-6)

            s.post(2e-6, deliver)
            return None
        else:
            while not env["inbox"]:
                s.block("awaiting message")
            assert s.now() >= 2e-6
            return env["inbox"][0]

    assert run_spmd(body, 2) == [None, "hello"]


def test_deadlock_detected():
    def body(r):
        current_scheduler().block("forever")

    with pytest.raises(DeadlockError) as ei:
        run_spmd(body, 2)
    assert "forever" in str(ei.value)


def test_rank_exception_propagates_with_rank_id():
    def body(r):
        if r == 2:
            raise ValueError("boom")
        current_scheduler().block("peer died")

    with pytest.raises(RankFailure) as ei:
        run_spmd(body, 4)
    assert ei.value.rank == 2
    assert isinstance(ei.value.__cause__, ValueError)


def test_max_time_guard():
    from repro.sim.errors import SimError

    def body(r):
        s = current_scheduler()
        while True:
            s.charge(1.0)

    with pytest.raises(SimError, match="max_time"):
        Scheduler(1, max_time=10.0).run(body)


def test_determinism_same_seedless_program():
    """Two runs of the same program produce identical traces."""

    def make_body(log):
        def body(r):
            s = current_scheduler()
            for i in range(5):
                s.charge((r + 1) * 1e-6)
                log.append((round(s.now() * 1e9), r, i))

        return body

    log1, log2 = [], []
    run_spmd(make_body(log1), 4)
    run_spmd(make_body(log2), 4)
    assert log1 == log2


def test_trace_buffer_records_blocks():
    trace = TraceBuffer()

    def body(r):
        current_scheduler().sleep(1e-6)

    run_spmd(body, 2, trace=trace)
    kinds = {ev.kind for ev in trace}
    assert "block" in kinds and "resume" in kinds


def test_post_at_absolute_time():
    def body(r):
        s = current_scheduler()
        fired = []
        s.post_at(7e-6, lambda: (fired.append(True), s.wake(0, 7e-6)))
        while not fired:
            s.block("wait for absolute event")
        return round(s.now() * 1e6)

    assert run_spmd(body, 1) == [7]


def test_run_not_reentrant():
    sched = Scheduler(1)
    sched.run(lambda r: None)
    with pytest.raises(Exception):
        sched.run(lambda r: None)


def test_many_ranks_smoke():
    """128 ranks with staggered sleeps complete and preserve ordering."""

    def body(r):
        s = current_scheduler()
        s.sleep((r % 7 + 1) * 1e-6)
        s.charge(1e-6)
        return r

    assert run_spmd(body, 128) == list(range(128))


def test_ties_resolved_by_rank_order():
    """Ranks released at the same instant run in rank order."""
    log = []

    def body(r):
        s = current_scheduler()
        s.sleep(1e-6)  # everyone wakes at the same simulated time
        log.append(r)

    run_spmd(body, 6)
    assert log == sorted(log)
