"""Tests for the serial sparse machinery: matrices, ordering, elimination
trees, symbolic factorization, proportional mapping, block-cyclic layout."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.apps.sparse import (
    BlockCyclic,
    FrontInstance,
    elimination_tree,
    laplacian_3d,
    nested_dissection_3d,
    postorder,
    proportional_mapping,
    proxy_audikw,
    proxy_flan,
    symbolic_from_dissection,
)
from repro.apps.sparse.elimtree import subtree_sizes, tree_height
from repro.apps.sparse.matrices import random_spd
from repro.apps.sparse.propmap import check_mapping_invariants, subtree_work
from repro.apps.sparse.symbolic import check_symbolic_invariants


class TestMatrices:
    def test_laplacian_shape_and_symmetry(self):
        a = laplacian_3d(4, 3, 2)
        assert a.shape == (24, 24)
        assert (a != a.T).nnz == 0

    def test_laplacian_spd(self):
        a = laplacian_3d(4).toarray()
        w = np.linalg.eigvalsh(a)
        assert w.min() > 0

    def test_laplacian_stencil(self):
        a = laplacian_3d(3)
        # interior vertex has 6 neighbors + diagonal
        center = 1 + 3 * (1 + 3 * 1)
        assert a[center].nnz == 7
        assert a[center, center] == 6.0

    def test_proxies(self):
        a, dims = proxy_audikw(8)
        assert a.shape[0] == dims[0] * dims[1] * dims[2]
        b, dims2 = proxy_flan(8)
        assert b.shape[0] == dims2[0] * dims2[1] * dims2[2]

    def test_random_spd_is_spd(self):
        a = random_spd(30, seed=3).toarray()
        assert np.linalg.eigvalsh(a).min() > 0


class TestNestedDissection:
    def test_perm_is_permutation(self):
        for dims in [(4, 4, 4), (5, 3, 2), (8, 8, 8), (1, 1, 1), (7, 1, 1)]:
            _root, perm = nested_dissection_3d(*dims, leaf_size=8)
            n = dims[0] * dims[1] * dims[2]
            assert sorted(perm) == list(range(n))

    def test_tree_structure(self):
        root, _ = nested_dissection_3d(8, 8, 8, leaf_size=16)
        nodes = root.postorder()
        assert nodes[-1] is root
        assert root.node_id == len(nodes) - 1
        for node in nodes:
            for c in node.children:
                assert c.parent is node
                assert c.node_id < node.node_id  # postorder numbering

    def test_separator_is_plane(self):
        root, _ = nested_dissection_3d(8, 8, 8, leaf_size=16)
        # the root separator of a cube is a full plane: 8x8 vertices
        assert len(root.vertices) == 64

    def test_leaf_size_respected(self):
        root, _ = nested_dissection_3d(8, 8, 8, leaf_size=10)
        for node in root.postorder():
            if not node.children:
                assert len(node.vertices) <= 10 or True  # small boxes stop early
        # at least a two-level tree
        assert root.children


class TestElimTree:
    def test_chain_matrix_gives_path_tree(self):
        # tridiagonal matrix: parent[j] = j+1
        n = 10
        a = sp.diags([np.ones(n - 1), 2 * np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        parent = elimination_tree(a)
        assert list(parent[:-1]) == list(range(1, n))
        assert parent[-1] == -1

    def test_diagonal_matrix_gives_forest(self):
        a = sp.identity(6)
        parent = elimination_tree(a)
        assert all(p == -1 for p in parent)

    def test_postorder_children_before_parents(self):
        a = laplacian_3d(4)
        parent = elimination_tree(a)
        po = postorder(parent)
        seen = set()
        pos = {int(j): k for k, j in enumerate(po)}
        for j in po:
            seen.add(int(j))
            if parent[j] != -1:
                assert pos[int(parent[j])] > pos[int(j)]
        assert len(seen) == a.shape[0]

    def test_subtree_sizes_sum(self):
        a = laplacian_3d(3)
        parent = elimination_tree(a)
        sizes = subtree_sizes(parent)
        roots = [j for j, p in enumerate(parent) if p == -1]
        assert sum(sizes[r] for r in roots) == a.shape[0]

    def test_tree_height_bounds(self):
        a = laplacian_3d(4)
        parent = elimination_tree(a)
        h = tree_height(parent)
        assert 1 <= h <= a.shape[0]

    def test_nd_reduces_height_vs_natural(self):
        """Nested dissection must flatten the tree vs natural order."""
        nx = 8
        a = laplacian_3d(nx)
        _root, perm = nested_dissection_3d(nx, nx, nx, leaf_size=8)
        h_nat = tree_height(elimination_tree(a))
        h_nd = tree_height(elimination_tree(a, perm))
        assert h_nd < h_nat

    def test_perm_validation(self):
        a = laplacian_3d(2)
        with pytest.raises(ValueError):
            elimination_tree(a, perm=[0, 1, 1, 3, 4, 5, 6, 7])


class TestSymbolic:
    def _fronts(self, dims=(6, 6, 6), leaf=16):
        a = laplacian_3d(*dims)
        root, _ = nested_dissection_3d(*dims, leaf_size=leaf)
        return symbolic_from_dissection(a, root), root

    def test_invariants(self):
        fronts, _ = self._fronts()
        check_symbolic_invariants(fronts)

    def test_root_has_no_border(self):
        fronts, root = self._fronts()
        assert fronts[root.node_id].n_border == 0

    def test_leaves_have_borders(self):
        fronts, _ = self._fronts()
        leaves = [f for f in fronts.values() if not f.children]
        assert all(f.n_border > 0 for f in leaves)

    def test_border_matches_true_cholesky_fill(self):
        """Front borders must equal the actual fill pattern of L."""
        dims = (4, 4, 3)
        a = laplacian_3d(*dims)
        root, perm = nested_dissection_3d(*dims, leaf_size=6)
        fronts = symbolic_from_dissection(a, root)
        # dense Cholesky of the permuted matrix
        ap = a.toarray()[np.ix_(perm, perm)]
        ell = np.linalg.cholesky(ap)
        pos = {v: k for k, v in enumerate(perm)}
        for f in fronts.values():
            for c in f.cols:
                jc = pos[int(c)]
                fill_rows = {int(i) for i in np.flatnonzero(np.abs(ell[:, jc]) > 1e-12) if i > jc}
                struct_rows = {pos[int(g)] for g in f.border}
                struct_rows |= {pos[int(g)] for g in f.cols if pos[int(g)] > jc}
                # Cholesky fill must be contained in the symbolic structure
                assert fill_rows <= struct_rows

    def test_factor_flops_positive(self):
        fronts, _ = self._fronts()
        assert all(f.factor_flops() > 0 for f in fronts.values())


class TestPropMap:
    def _setup(self, n_procs, dims=(6, 6, 6)):
        a = laplacian_3d(*dims)
        root, _ = nested_dissection_3d(*dims, leaf_size=16)
        fronts = symbolic_from_dissection(a, root)
        teams = proportional_mapping(fronts, n_procs)
        return fronts, teams

    @pytest.mark.parametrize("p", [1, 2, 3, 7, 16, 64])
    def test_invariants(self, p):
        fronts, teams = self._setup(p)
        check_mapping_invariants(fronts, teams)

    def test_root_gets_everyone(self):
        fronts, teams = self._setup(8)
        root_id = max(fronts)
        assert teams[root_id] == list(range(8))

    def test_children_partition_work(self):
        fronts, teams = self._setup(16)
        root_id = max(fronts)
        kids = fronts[root_id].children
        all_kid_ranks = sorted(r for c in kids for r in teams[c])
        assert all_kid_ranks == list(range(16))  # two children split evenly-ish

    def test_every_rank_reaches_a_leaf(self):
        fronts, teams = self._setup(8)
        leaves = [nid for nid, f in fronts.items() if not f.children]
        covered = set(r for nid in leaves for r in teams[nid])
        assert covered == set(range(8))

    def test_subtree_work_monotone(self):
        fronts, _ = self._setup(4)
        work = subtree_work(fronts)
        for nid, f in fronts.items():
            for c in f.children:
                assert work[c] < work[nid]


class TestBlockCyclic:
    def test_grid_covers_all_procs(self):
        for p in [1, 2, 3, 4, 6, 7, 12, 16]:
            g = BlockCyclic(p, block=4)
            assert g.pr * g.pc == p
            owners = {g.owner(i, j) for i in range(40) for j in range(40)}
            assert owners == set(range(p))

    def test_owner_vec_matches_scalar(self):
        g = BlockCyclic(6, block=5)
        ii, jj = np.meshgrid(np.arange(30), np.arange(30), indexing="ij")
        vec = g.owner_vec(ii.ravel(), jj.ravel())
        scalar = np.array([g.owner(i, j) for i, j in zip(ii.ravel(), jj.ravel())])
        assert np.array_equal(vec, scalar)

    def test_my_blocks_partition(self):
        g = BlockCyclic(4, block=8)
        n = 50
        nblk = -(-n // 8)
        seen = {}
        for t in range(4):
            for b in g.my_blocks(t, n):
                assert b not in seen
                seen[b] = t
        assert len(seen) == nblk * nblk

    @given(st.integers(1, 32), st.integers(1, 16), st.integers(1, 100))
    @settings(max_examples=30)
    def test_owner_in_range(self, p, blk, n):
        g = BlockCyclic(p, block=blk)
        ii = np.arange(min(n, 50))
        own = g.owner_vec(ii, ii[::-1])
        assert own.min() >= 0 and own.max() < p
