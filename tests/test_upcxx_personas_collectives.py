"""Tests for personas/LPC, progress introspection, and the extended
collectives (gather/scatter/allgather)."""

import numpy as np
import pytest

import repro.upcxx as upcxx


class TestLpc:
    def test_lpc_runs_during_progress(self):
        def body():
            log = []
            f = upcxx.lpc(lambda: log.append("ran") or 41)
            assert log == []  # deferred until progress
            v = f.wait()
            assert log == ["ran"]
            return v + 1

        assert upcxx.run_spmd(body, 1) == [42]

    def test_lpc_ff(self):
        def body():
            log = []
            upcxx.lpc_ff(log.append, "x")
            upcxx.progress()
            return log

        assert upcxx.run_spmd(body, 1) == [["x"]]

    def test_lpc_future_result_flattens(self):
        def body():
            f = upcxx.lpc(lambda: upcxx.make_future(7))
            return f.wait()

        assert upcxx.run_spmd(body, 1) == [7]

    def test_master_persona_identity(self):
        def body():
            p1 = upcxx.master_persona()
            p2 = upcxx.current_persona()
            assert p1 is p2
            assert p1.rank == upcxx.rank_me()

        upcxx.run_spmd(body, 2)

    def test_lpc_ordering_fifo(self):
        def body():
            log = []
            for i in range(5):
                upcxx.lpc_ff(log.append, i)
            upcxx.progress()
            return log

        assert upcxx.run_spmd(body, 1) == [[0, 1, 2, 3, 4]]


class TestProgressIntrospection:
    def test_progress_required_after_lpc(self):
        def body():
            assert not upcxx.progress_required()
            upcxx.lpc_ff(lambda: None)
            assert upcxx.progress_required()
            upcxx.discharge()
            assert not upcxx.progress_required()

        upcxx.run_spmd(body, 1)

    def test_discharge_drains_everything(self):
        def body():
            log = []
            for i in range(3):
                upcxx.lpc_ff(log.append, i)
            upcxx.discharge()
            return len(log)

        assert upcxx.run_spmd(body, 1) == [3]


class TestGatherScatter:
    def test_gather_to_root(self):
        def body():
            me = upcxx.rank_me()
            out = upcxx.gather(me * me, root=2).wait()
            upcxx.barrier()
            return out

        res = upcxx.run_spmd(body, 5)
        assert res[2] == [0, 1, 4, 9, 16]
        assert all(res[r] is None for r in (0, 1, 3, 4))

    def test_allgather(self):
        def body():
            me = upcxx.rank_me()
            out = upcxx.allgather(f"r{me}").wait()
            upcxx.barrier()
            return out

        res = upcxx.run_spmd(body, 4)
        assert all(r == ["r0", "r1", "r2", "r3"] for r in res)

    def test_scatter_from_root(self):
        def body():
            me = upcxx.rank_me()
            values = [i * 10 for i in range(upcxx.rank_n())] if me == 1 else None
            got = upcxx.scatter(values, root=1).wait()
            upcxx.barrier()
            return got

        assert upcxx.run_spmd(body, 6) == [0, 10, 20, 30, 40, 50]

    def test_scatter_nonzero_root_rotated_tree(self):
        def body():
            me = upcxx.rank_me()
            values = list(range(100, 100 + upcxx.rank_n())) if me == 3 else None
            got = upcxx.scatter(values, root=3).wait()
            upcxx.barrier()
            return got

        res = upcxx.run_spmd(body, 5)
        assert res == [100, 101, 102, 103, 104]

    def test_scatter_wrong_length_rejected(self):
        from repro.sim.errors import RankFailure

        def body():
            upcxx.scatter([1, 2, 3], root=0).wait()  # needs rank_n() values
            upcxx.barrier()

        with pytest.raises(RankFailure):
            upcxx.run_spmd(body, 4)

    def test_gather_on_subteam(self):
        def body():
            me = upcxx.rank_me()
            world = upcxx.team_world()
            sub = world.split(color=me % 2, key=me)
            out = upcxx.gather(me, root=0, team=sub).wait()
            upcxx.barrier()
            return out

        res = upcxx.run_spmd(body, 4)
        assert res[0] == [0, 2]
        assert res[1] == [1, 3]

    def test_gather_numpy_payloads(self):
        def body():
            me = upcxx.rank_me()
            out = upcxx.allgather(np.full(3, float(me))).wait()
            upcxx.barrier()
            return float(sum(a.sum() for a in out))

        assert upcxx.run_spmd(body, 3) == [9.0] * 3

    def test_single_rank_collectives(self):
        def body():
            assert upcxx.gather("v").wait() == ["v"]
            assert upcxx.allgather("v").wait() == ["v"]
            assert upcxx.scatter(["only"]).wait() == "only"

        upcxx.run_spmd(body, 1)
