"""Replication layer unit + integration surface.

Covers the pieces the chaos suites exercise only end-to-end:

- :class:`ReplicaMap` placement invariants — successor-ring owner sets,
  stability of surviving original owners across deaths, factor clamping;
- :class:`ReplicatedStore` fan-out — with factor ``f`` every key is
  present on exactly ``f`` ranks after quiesce, with equal values;
- admission control — a backlog limit sheds load as the typed
  :class:`Overloaded` rejection, counted in the service record and never
  silently folded into availability.
"""

import pytest

import repro.upcxx as upcxx
from repro.upcxx.replication import ReplicaMap

N = 8


# ---------------------------------------------------------------- ReplicaMap
def test_owner_sets_are_distinct_ring_successors():
    m = ReplicaMap(N, factor=3)
    for key in range(200):
        owners = m.owners(key)
        assert len(owners) == 3
        assert len(set(owners)) == 3
        home = m.home(key)
        assert owners == [(home + i) % N for i in range(3)]
        assert m.primary(key) == owners[0]


def test_factor_clamped_to_rank_count():
    m = ReplicaMap(3, factor=16)
    assert m.owners(0) == [m.home(0) % 3, (m.home(0) + 1) % 3, (m.home(0) + 2) % 3]


def test_surviving_original_owners_stay_owners_after_death():
    """The anti-entropy proof rests on this: a death only moves walk
    positions *earlier*, so every surviving original owner remains in the
    owner set and ring order among them is preserved."""
    m = ReplicaMap(N, factor=2)
    before = {k: m.owners(k) for k in range(300)}
    dead = 3
    m.mark_dead(dead)
    assert m.alive() == [r for r in range(N) if r != dead]
    for k, old in before.items():
        new = m.owners(k)
        assert len(new) == 2 and dead not in new
        survivors = [r for r in old if r != dead]
        # surviving originals keep their relative order at the front
        assert new[: len(survivors)] == survivors
        if dead in old:
            # the recruit is the next alive successor past the old set
            assert new[-1] not in old


def test_dead_override_matches_marked_state():
    m = ReplicaMap(N, factor=2)
    with_arg = {k: m.owners(k, dead={5}) for k in range(100)}
    m.mark_dead(5)
    assert with_arg == {k: m.owners(k) for k in range(100)}


# ----------------------------------------------------- placement fan-out
@pytest.mark.parametrize("factor", [1, 2, 3])
def test_every_key_lands_on_exactly_factor_ranks(factor):
    """After quiesce each written key exists on exactly ``factor`` ranks
    and every copy holds the same combined value."""
    from repro.upcxx.replication import ReplicatedStore

    def body():
        me = upcxx.rank_me()
        store = ReplicatedStore("+", batch_size=4, replication=factor,
                                credits=4, max_dwell=5e-6)
        upcxx.barrier()
        for i in range(12):
            store.update((me * 5 + i) % 24, me + i + 1)
        store.store.quiesce()
        upcxx.barrier()
        return dict(store.local_items())

    shards = upcxx.run_spmd(body, 4)
    seen: dict = {}
    for shard in shards:
        for key, val in shard.items():
            seen.setdefault(key, []).append(val)
    assert seen  # the writes actually landed somewhere
    for key, copies in seen.items():
        assert len(copies) == factor, f"key {key}: {len(copies)} copies"
        assert len(set(copies)) == 1, f"key {key}: diverging replicas"


# ------------------------------------------------------- admission control
def test_admission_limit_sheds_as_typed_overloaded():
    from repro.apps.kvservice import KvService, Overloaded, default_config

    cfg = default_config("tiny")

    def body():
        svc = KvService(batch_size=8, credits=4, max_dwell=cfg["max_dwell"],
                        cache_capacity=32, admission_limit=2)
        me = upcxx.rank_me()
        shed = 0
        for i in range(40):
            now = upcxx.sim_now()
            try:
                if i % 4 == 0:
                    svc.get((me * 7 + i) % cfg["n_keys"], now)
                else:
                    svc.put((me * 7 + i) % cfg["n_keys"], i + 1, now)
            except Overloaded:
                shed += 1
        svc.drain()
        rec = svc.result()
        assert rec["requests_shed"] == shed
        return rec

    for rec in upcxx.run_spmd(body, 4, ppn=2):
        # an open loop at full speed against a backlog of 2 must shed
        assert rec["requests_shed"] > 0
        assert 0.0 < rec["shed_fraction"] < 1.0
        # shed requests never pollute availability: served/issued counts
        # admitted traffic only, and everything admitted was served
        assert rec["requests_served"] == rec["requests_issued"]
        assert rec["availability"] == 1.0
        assert rec["writes_lost"] == 0


def test_no_admission_limit_never_sheds():
    from repro.apps.kvservice import default_config, kv_rank_body

    cfg = default_config("tiny")
    cfg.update({"ranks": 4, "ppn": 2, "n_requests": 32, "n_keys": 64})
    for rec in upcxx.run_spmd(lambda: kv_rank_body(cfg), 4, ppn=2):
        assert rec["requests_shed"] == 0
        assert rec["shed_fraction"] == 0.0
