"""Tests for the MPI baseline: p2p (eager + rendezvous), collectives, RMA."""

import numpy as np
import pytest

from repro.mpisim import run_mpi, comm_world, Win
from repro.mpisim.profile import DEFAULT_MPI_COSTS


class TestP2P:
    def test_send_recv_object(self):
        def body():
            comm = comm_world()
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                comm.barrier()
                return None
            data = comm.recv(source=0, tag=11)
            comm.barrier()
            return data

        res = run_mpi(body, 2)
        assert res[1] == {"a": 7, "b": 3.14}

    def test_isend_irecv(self):
        def body():
            comm = comm_world()
            if comm.rank == 0:
                req = comm.isend([1, 2, 3], dest=1, tag=5)
                req.wait()
            else:
                req = comm.irecv(source=0, tag=5)
                assert req.wait() == [1, 2, 3]
            comm.barrier()

        run_mpi(body, 2)

    def test_rendezvous_for_large_messages(self):
        big = np.arange(DEFAULT_MPI_COSTS.rndv_threshold, dtype=np.uint8)

        def body():
            comm = comm_world()
            if comm.rank == 0:
                comm.send(big, dest=1)
            else:
                got = comm.recv(source=0)
                assert np.array_equal(got, big)
            comm.barrier()

        run_mpi(body, 2)

    def test_wildcard_source_and_tag(self):
        def body():
            comm = comm_world()
            if comm.rank == 0:
                got = [comm.recv() for _ in range(2)]
                comm.barrier()
                return sorted(got)
            comm.send(comm.rank * 10, dest=0, tag=comm.rank)
            comm.barrier()
            return None

        res = run_mpi(body, 3)
        assert res[0] == [10, 20]

    def test_unexpected_messages_buffer(self):
        """Messages arriving before the recv is posted are not lost."""

        def body():
            comm = comm_world()
            if comm.rank == 0:
                for i in range(4):
                    comm.send(i, dest=1, tag=i)
                comm.barrier()
                return None
            # let everything arrive before posting any receive
            comm.rt.sched.sleep(100e-6)
            got = [comm.recv(source=0, tag=i) for i in range(4)]
            comm.barrier()
            return got

        res = run_mpi(body, 2)
        assert res[1] == [0, 1, 2, 3]

    def test_tag_selectivity(self):
        def body():
            comm = comm_world()
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                comm.barrier()
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            comm.barrier()
            return (first, second)

        res = run_mpi(body, 2)
        assert res[1] == ("first", "second")

    def test_ordering_same_src_tag(self):
        def body():
            comm = comm_world()
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=0)
                comm.barrier()
                return None
            got = [comm.recv(source=0, tag=0) for _ in range(5)]
            comm.barrier()
            return got

        assert run_mpi(body, 2)[1] == [0, 1, 2, 3, 4]


class TestCollectives:
    def test_barrier(self):
        def body():
            comm = comm_world()
            for _ in range(3):
                comm.barrier()
            return True

        assert all(run_mpi(body, 5))

    def test_bcast(self):
        def body():
            comm = comm_world()
            v = comm.bcast("hello" if comm.rank == 1 else None, root=1)
            comm.barrier()
            return v

        assert run_mpi(body, 4) == ["hello"] * 4

    def test_allreduce(self):
        def body():
            comm = comm_world()
            r = comm.allreduce(comm.rank + 1, "+")
            comm.barrier()
            return r

        assert run_mpi(body, 6) == [21] * 6

    def test_allgather(self):
        def body():
            comm = comm_world()
            out = comm.allgather(comm.rank * comm.rank)
            comm.barrier()
            return out

        assert run_mpi(body, 4) == [[0, 1, 4, 9]] * 4

    def test_alltoallv(self):
        def body():
            comm = comm_world()
            n = comm.size
            send = [f"{comm.rank}->{d}" for d in range(n)]
            got = comm.alltoallv(send)
            comm.barrier()
            return got

        res = run_mpi(body, 4)
        for r, got in enumerate(res):
            assert got == [f"{s}->{r}" for s in range(4)]

    def test_alltoallv_with_empty_payloads(self):
        def body():
            comm = comm_world()
            n = comm.size
            send = [None] * n
            send[(comm.rank + 1) % n] = "x"
            got = comm.alltoallv(send)
            comm.barrier()
            return got

        res = run_mpi(body, 5)
        for r, got in enumerate(res):
            assert got[(r - 1) % 5] == "x"
            assert sum(1 for g in got if g == "x") == 1


class TestRma:
    def test_put_flush_visible(self):
        def body():
            comm = comm_world()
            win = Win.allocate(comm, 64)
            comm.barrier()
            if comm.rank == 0:
                win.lock(1)
                win.put(b"DATA", target=1, offset=8)
                win.unlock(1)
            comm.barrier()
            v = bytes(win.local_view()) if comm.rank == 1 else None
            comm.barrier()
            return v

        res = run_mpi(body, 2)
        assert res[1][8:12] == b"DATA"

    def test_get_after_flush(self):
        def body():
            comm = comm_world()
            win = Win.allocate(comm, 32)
            win.local_view(np.int64)[:] = comm.rank + 100
            comm.barrier()
            if comm.rank == 0:
                win.lock(1)
                res = win.get(target=1, offset=0, nbytes=8)
                win.unlock(1)
                assert res.as_array(np.int64)[0] == 101
            comm.barrier()

        run_mpi(body, 2)

    def test_many_puts_one_flush(self):
        def body():
            comm = comm_world()
            win = Win.allocate(comm, 4096)
            comm.barrier()
            if comm.rank == 0:
                win.lock_all()
                for i in range(16):
                    win.put(np.full(4, i, dtype=np.int64), target=1, offset=32 * i)
                win.unlock_all()
            comm.barrier()
            if comm.rank == 1:
                v = win.local_view(np.int64)
                assert v[4 * 15 * 1] == 0 or True  # layout checked below
                assert np.all(win.local_view(np.int64, 4) == 0)
            comm.barrier()

        run_mpi(body, 2)

    def test_window_bounds_checked(self):
        def body():
            comm = comm_world()
            win = Win.allocate(comm, 16)
            comm.barrier()
            with pytest.raises(ValueError):
                win.put(b"0123456789abcdefgh", target=0, offset=0)
            comm.barrier()

        run_mpi(body, 2)

    def test_get_before_flush_rejected(self):
        def body():
            comm = comm_world()
            win = Win.allocate(comm, 16)
            comm.barrier()
            if comm.rank == 0:
                res = win.get(target=1, offset=0, nbytes=8)
                with pytest.raises(RuntimeError):
                    res.as_array()
                win.flush(1)
            comm.barrier()

        run_mpi(body, 2)


class TestCosts:
    def test_pipeline_eff_dips_at_8k(self):
        c = DEFAULT_MPI_COSTS
        assert c.rma_pipeline_eff(8192) < c.rma_pipeline_eff(64)
        assert c.rma_pipeline_eff(8192) < c.rma_pipeline_eff(4 << 20)
        assert c.rma_pipeline_eff(8192) == pytest.approx(1 - c.rma_dip_amplitude)

    def test_latency_window(self):
        c = DEFAULT_MPI_COSTS
        assert c.latency_window_extra(100) == 0
        assert c.latency_window_extra(512) > 0
        assert c.latency_window_extra(4096) == 0
