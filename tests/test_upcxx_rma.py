"""End-to-end tests for global pointers, memory, and rput/rget."""

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.upcxx.errors import GlobalPtrError


class TestGlobalPtr:
    def test_arithmetic(self):
        p = upcxx.GlobalPtr(0, 128, np.float64, 10)
        q = p + 3
        assert q.offset == 128 + 24
        assert q.count == 7
        assert q - p == 3
        assert (q - 2).offset == 128 + 8

    def test_indexing(self):
        p = upcxx.GlobalPtr(1, 0, np.int32, 5)
        assert p[2].offset == 8

    def test_past_end_rejected(self):
        p = upcxx.GlobalPtr(0, 0, np.float64, 2)
        with pytest.raises(GlobalPtrError):
            p + 3

    def test_cast(self):
        p = upcxx.GlobalPtr(0, 0, np.uint8, 16)
        q = p.cast(np.float64)
        assert q.count == 2
        with pytest.raises(GlobalPtrError):
            upcxx.GlobalPtr(0, 0, np.uint8, 10).cast(np.float64)

    def test_null(self):
        assert upcxx.NULL.is_null()
        assert not upcxx.NULL
        assert upcxx.GlobalPtr(0, 0, np.uint8, 4)

    def test_diff_requires_same_rank(self):
        a = upcxx.GlobalPtr(0, 0, np.float64, 4)
        b = upcxx.GlobalPtr(1, 0, np.float64, 4)
        with pytest.raises(GlobalPtrError):
            a - b


class TestMemory:
    def test_allocate_local_view(self):
        def body():
            g = upcxx.new_array(np.float64, 8)
            assert g.rank == upcxx.rank_me()
            v = g.local()
            v[:] = np.arange(8.0)
            assert np.array_equal(g.local(), np.arange(8.0))
            upcxx.deallocate(g)

        upcxx.run_spmd(body, 2)

    def test_zero_size_allocation_legal(self):
        # allocate(0) / new_array<T>(0) are legal UPC++: valid, distinct,
        # deallocatable pointers
        def body():
            a = upcxx.allocate(0)
            b = upcxx.new_array(np.float64, 0)
            assert a.count == 0 and b.count == 0
            assert (a.rank, a.offset) != (b.rank, b.offset)
            upcxx.deallocate(a)
            upcxx.deallocate(b)
            assert upcxx.segment_usage()["in_use"] == 0
            with pytest.raises(ValueError):
                upcxx.new_array(np.float64, -1)

        upcxx.run_spmd(body, 1)

    def test_local_view_of_remote_rejected(self):
        def body():
            g = upcxx.new_array(np.float64, 4)
            if upcxx.rank_me() == 0:
                remote = upcxx.GlobalPtr(1, g.offset, g.dtype, g.count)
                with pytest.raises(GlobalPtrError):
                    remote.local()
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_deallocate_remote_rejected(self):
        def body():
            g = upcxx.new_array(np.float64, 4)
            if upcxx.rank_me() == 0:
                remote = upcxx.GlobalPtr(1, g.offset, g.dtype, g.count)
                with pytest.raises(ValueError):
                    upcxx.deallocate(remote)
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_segment_usage(self):
        def body():
            g = upcxx.allocate(1000)
            u = upcxx.segment_usage()
            assert u["in_use"] >= 1000
            upcxx.deallocate(g)
            return upcxx.segment_usage()["in_use"]

        assert upcxx.run_spmd(body, 1) == [0]


def _exchange_ptrs(make):
    """Helper: every rank allocates via ``make`` and broadcasts its pointer."""
    g = make()
    ptrs = [upcxx.broadcast(g, root=r).wait() for r in range(upcxx.rank_n())]
    return g, ptrs


class TestRputRget:
    def test_blocking_rput_then_rget(self):
        def body():
            me = upcxx.rank_me()
            g, ptrs = _exchange_ptrs(lambda: upcxx.new_array(np.float64, 4))
            if me == 0:
                upcxx.rput(np.array([1.0, 2.0, 3.0, 4.0]), ptrs[1]).wait()
                got = upcxx.rget(ptrs[1]).wait()
                assert np.array_equal(got, [1.0, 2.0, 3.0, 4.0])
            upcxx.barrier()
            if me == 1:
                assert np.array_equal(g.local(), [1.0, 2.0, 3.0, 4.0])

        upcxx.run_spmd(body, 2)

    def test_rput_scalar_and_rget_scalar(self):
        def body():
            me = upcxx.rank_me()
            _, ptrs = _exchange_ptrs(lambda: upcxx.new_array(np.int64, 1))
            if me == 1:
                upcxx.rput(77, ptrs[0]).wait()
            upcxx.barrier()
            return upcxx.rget(ptrs[0]).wait()

        assert upcxx.run_spmd(body, 2) == [77, 77]

    def test_rput_takes_simulated_time(self):
        def body():
            _, ptrs = _exchange_ptrs(lambda: upcxx.new_array(np.uint8, 4096))
            dt = None
            if upcxx.rank_me() == 0:
                t0 = upcxx.sim_now()
                upcxx.rput(bytes(4096), ptrs[1]).wait()
                dt = upcxx.sim_now() - t0
                # at least a round trip of inter-node latency
                assert dt > 1.0e-6
            upcxx.barrier()
            return dt

        upcxx.run_spmd(body, 2, ppn=1)

    def test_rput_as_promise_tracks_many(self):
        def body():
            _, ptrs = _exchange_ptrs(lambda: upcxx.new_array(np.float64, 64))
            if upcxx.rank_me() == 0:
                p = upcxx.Promise()
                for i in range(10):
                    upcxx.rput(
                        np.full(4, float(i)),
                        ptrs[1] + 4 * i,
                        cx=upcxx.operation_cx.as_promise(p),
                    )
                p.finalize().wait()
                back = upcxx.rget(ptrs[1]).wait()
                assert back[4 * 9] == 9.0
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_rput_overflow_rejected(self):
        def body():
            g = upcxx.new_array(np.float64, 2)
            with pytest.raises(GlobalPtrError):
                upcxx.rput(np.zeros(4), g)

        upcxx.run_spmd(body, 1)

    def test_rget_partial_count(self):
        def body():
            g = upcxx.new_array(np.float64, 8)
            g.local()[:] = np.arange(8.0)
            got = upcxx.rget(g, count=3).wait()
            assert np.array_equal(got, [0.0, 1.0, 2.0])

        upcxx.run_spmd(body, 1)

    def test_zero_byte_rput_completes(self):
        # UPC++ permits zero-length transfers: they complete (after the
        # round trip) without touching target memory
        def body():
            me = upcxx.rank_me()
            g, ptrs = _exchange_ptrs(lambda: upcxx.new_array(np.float64, 4))
            if me == 1:
                g.local()[:] = np.arange(4.0)
            upcxx.barrier()
            if me == 0:
                upcxx.rput(b"", ptrs[1]).wait()
                upcxx.rput(np.zeros(0), ptrs[1]).wait()
            upcxx.barrier()
            if me == 1:
                assert np.array_equal(g.local(), np.arange(4.0))  # untouched
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_zero_byte_rget_completes(self):
        def body():
            me = upcxx.rank_me()
            _, ptrs = _exchange_ptrs(lambda: upcxx.new_array(np.float64, 4))
            if me == 0:
                got = upcxx.rget(ptrs[1], count=0).wait()
                assert len(got) == 0
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_remote_cx_as_rpc_runs_at_target(self):
        hits = []

        def body():
            me = upcxx.rank_me()
            _, ptrs = _exchange_ptrs(lambda: upcxx.new_array(np.float64, 2))
            upcxx.barrier()
            if me == 0:
                upcxx.rput(
                    np.array([5.0, 6.0]),
                    ptrs[1],
                    cx=upcxx.remote_cx.as_rpc(lambda: hits.append(upcxx.rank_me())),
                )
            upcxx.barrier()
            return hits[:]

        upcxx.run_spmd(body, 2)
        assert hits == [1]  # executed on the target rank

    def test_then_chain_after_rput(self):
        def body():
            me = upcxx.rank_me()
            _, ptrs = _exchange_ptrs(lambda: upcxx.new_array(np.float64, 2))
            if me == 0:
                f = upcxx.rput(np.array([1.0, 2.0]), ptrs[1]).then(
                    lambda: upcxx.rget(ptrs[1])
                )
                got = f.wait()
                assert np.array_equal(got, [1.0, 2.0])
            upcxx.barrier()

        upcxx.run_spmd(body, 2)


class TestVis:
    def test_rput_irregular_fragments(self):
        def body():
            me = upcxx.rank_me()
            _, ptrs = _exchange_ptrs(lambda: upcxx.new_array(np.float64, 16))
            if me == 0:
                frags = [
                    (ptrs[1] + 0, np.array([1.0, 2.0])),
                    (ptrs[1] + 8, np.array([3.0])),
                    (ptrs[1] + 12, np.array([4.0, 5.0])),
                ]
                upcxx.rput_irregular(frags).wait()
                back = upcxx.rget(ptrs[1]).wait()
                assert back[0] == 1.0 and back[8] == 3.0 and back[13] == 5.0
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_strided_roundtrip(self):
        def body():
            me = upcxx.rank_me()
            _, ptrs = _exchange_ptrs(lambda: upcxx.new_array(np.float64, 100))
            if me == 0:
                block = np.arange(12.0).reshape(4, 3)  # 4 rows x 3 cols
                upcxx.rput_strided(block, ptrs[1], col_stride_elems=10).wait()
                back = upcxx.rget_strided(ptrs[1], 4, 3, 10).wait()
                assert np.array_equal(back, block)
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_irregular_mixed_ranks_rejected(self):
        def body():
            a = upcxx.new_array(np.float64, 2)
            other = (upcxx.rank_me() + 1) % upcxx.rank_n()
            b = upcxx.GlobalPtr(other, 0, np.float64, 2)
            with pytest.raises(GlobalPtrError):
                upcxx.rput_irregular([(a, np.zeros(2)), (b, np.zeros(2))])
            upcxx.barrier()

        upcxx.run_spmd(body, 2)
