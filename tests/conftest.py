"""Shared test configuration.

Simulation-backed property tests legitimately take longer than hypothesis'
default 200 ms deadline (each example may spin up a scheduler with several
rank threads), so the deadline is disabled globally and example counts are
kept moderate.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
