"""Integration tests for the conduit over the DES: put/get/AM/AMO timing."""

import numpy as np
import pytest

from repro.gasnet.conduit import Conduit
from repro.gasnet.machine import Machine
from repro.gasnet.network import AriesNetwork, PATH_BTE, PATH_FMA
from repro.sim.coop import Scheduler, current_scheduler


def _mkconduit(sched, n, ppn=1):
    return Conduit(sched, Machine.for_ranks(n, ppn), AriesNetwork(), segment_size=1 << 20)


def _wait(sched, handle, rank):
    handle.on_complete(lambda h: sched.wake(rank, h.time_done))
    while not handle.done:
        sched.block("wait handle")
    return handle


def test_put_transfers_bytes_and_completes_after_rtt():
    sched = Scheduler(2)
    conduit = _mkconduit(sched, 2)
    net = conduit.network

    def body(r):
        s = current_scheduler()
        if r == 0:
            seg1 = conduit.segment(1)
            off = seg1.allocate(16)
            h = conduit.put_nb(0, 1, off, b"0123456789abcdef", PATH_FMA)
            _wait(s, h, 0)
            assert seg1.read(off, 16) == b"0123456789abcdef"
            # completion after at least 2 one-way latencies
            assert s.now() >= 2 * net.latency(False)
            return round(h.time_done * 1e9)
        return None

    res = sched.run(body)
    assert res[0] is not None and res[0] > 0


def test_get_returns_remote_bytes():
    sched = Scheduler(2)
    conduit = _mkconduit(sched, 2)

    def body(r):
        s = current_scheduler()
        seg = conduit.segment(1)
        if r == 1:
            off = seg.allocate(8)
            seg.write(off, b"DATADATA")
            s.rank_env(0)["off"] = off  # out-of-band rendezvous for the test
            s.sleep(1e-3)  # stay alive; one-sided get needs no target action
        else:
            s.sleep(1e-6)  # let rank 1 publish
            off = s.rank_env(0)["off"]
            h = conduit.get_nb(0, 1, off, 8)
            _wait(s, h, 0)
            assert h.data == b"DATADATA"
            return True

    assert sched.run(body)[0] is True


def test_am_delivery_requires_target_poll():
    """An AM sits in the inbox until the target polls it."""
    sched = Scheduler(2)
    conduit = _mkconduit(sched, 2)

    def body(r):
        s = current_scheduler()
        if r == 0:
            conduit.am_send(0, 1, "test.ping", {"x": 42}, nbytes=64)
        else:
            inbox = conduit.inbox(1)
            while not inbox.has_due(s.now()):
                s.block("awaiting AM")
            msg = inbox.poll(s.now())
            assert msg is not None
            assert msg.tag == "test.ping"
            assert msg.payload["x"] == 42
            assert msg.src == 0
            return msg.arrival

    arr = sched.run(body)[1]
    assert arr > 0


def test_am_arrival_time_respects_wire_model():
    sched = Scheduler(2)
    conduit = _mkconduit(sched, 2)
    net = conduit.network

    def body(r):
        s = current_scheduler()
        if r == 0:
            conduit.am_send(0, 1, "t", None, nbytes=1024)
        else:
            inbox = conduit.inbox(1)
            while not inbox.has_due(s.now()):
                s.block("awaiting AM")
            msg = inbox.poll(s.now())
            expected = net.occupancy(1024, PATH_FMA, False) + net.latency(False)
            assert msg.arrival == pytest.approx(expected)

    sched.run(body)


def test_nic_occupancy_serializes_flood():
    """Two back-to-back puts: the second's completion is pushed out."""
    sched = Scheduler(2)
    conduit = _mkconduit(sched, 2)
    net = conduit.network
    size = 64 * 1024

    def body(r):
        s = current_scheduler()
        if r == 0:
            seg = conduit.segment(1)
            off1, off2 = seg.allocate(size), seg.allocate(size)
            h1 = conduit.put_nb(0, 1, off1, bytes(size), PATH_BTE)
            h2 = conduit.put_nb(0, 1, off2, bytes(size), PATH_BTE)
            _wait(s, h2, 0)
            assert h1.done
            occ = net.occupancy(size, PATH_BTE, False)
            # second transfer starts only after the first finishes injecting
            assert h2.time_done - h1.time_done == pytest.approx(occ)

    sched.run(body)


def test_intra_node_faster_than_inter_node():
    def one(ppn):
        sched = Scheduler(2)
        conduit = _mkconduit(sched, 2, ppn=ppn)
        out = {}

        def body(r):
            s = current_scheduler()
            if r == 0:
                seg = conduit.segment(1)
                off = seg.allocate(4096)
                h = conduit.put_nb(0, 1, off, bytes(4096))
                _wait(s, h, 0)
                out["t"] = h.time_done

        sched.run(body)
        return out["t"]

    assert one(ppn=2) < one(ppn=1)  # same node beats cross node


def test_amo_fetch_add_no_target_cpu():
    """Remote atomics apply even while the target computes obliviously."""
    sched = Scheduler(2)
    conduit = _mkconduit(sched, 2)

    def body(r):
        s = current_scheduler()
        seg = conduit.segment(1)
        if r == 1:
            off = seg.allocate(8)
            seg.view(off, np.int64, 1)[0] = 100
            s.rank_env(0)["off"] = off
            s.sleep(1e-3)  # "computing": never polls, atomics land anyway
            return int(seg.view(off, np.int64, 1)[0])
        else:
            s.sleep(1e-6)
            off = s.rank_env(0)["off"]
            h1 = conduit.amo(0, 1, off, "fetch_add", np.int64, (5,))
            _wait(s, h1, 0)
            h2 = conduit.amo(0, 1, off, "fetch_add", np.int64, (7,))
            _wait(s, h2, 0)
            return (h1.data, h2.data)

    res = Scheduler.run(sched, body) if False else sched.run(body)
    assert res[0] == (100, 105)
    assert res[1] == 112


def test_amo_cas():
    sched = Scheduler(2)
    conduit = _mkconduit(sched, 2)

    def body(r):
        s = current_scheduler()
        seg = conduit.segment(1)
        if r == 1:
            off = seg.allocate(8)
            seg.view(off, np.int64, 1)[0] = 10
            s.rank_env(0)["off"] = off
            s.sleep(1e-3)
            return int(seg.view(off, np.int64, 1)[0])
        s.sleep(1e-6)
        off = s.rank_env(0)["off"]
        h = conduit.amo(0, 1, off, "cas", np.int64, (10, 77))
        _wait(s, h, 0)
        h2 = conduit.amo(0, 1, off, "cas", np.int64, (10, 99))  # stale expected
        _wait(s, h2, 0)
        return (h.data, h2.data)

    res = sched.run(body)
    assert res[0] == (10, 77)
    assert res[1] == 77  # second CAS failed


def test_conduit_stats():
    sched = Scheduler(2)
    conduit = _mkconduit(sched, 2)

    def body(r):
        s = current_scheduler()
        if r == 0:
            seg = conduit.segment(1)
            off = seg.allocate(64)
            h = conduit.put_nb(0, 1, off, bytes(64))
            _wait(s, h, 0)
            conduit.am_send(0, 1, "x", None, nbytes=8)

    sched.run(body)
    st = conduit.stats()
    assert st["puts"] == 1 and st["ams"] == 1


def test_machine_too_small_rejected():
    sched = Scheduler(4)
    with pytest.raises(ValueError):
        Conduit(sched, Machine(n_nodes=1, procs_per_node=2), AriesNetwork())
