"""Targeted stress tests for the scheduler's hard cases.

The sticky-wake machinery (lost-wakeup prevention when events destined for
a runnable rank fire at future timestamps) is the subtlest part of the
kernel; these tests pin its behavior, plus interleaving-heavy workloads
that historically exposed ordering bugs.
"""

import numpy as np
import pytest

from repro.sim.coop import Scheduler, current_scheduler, run_spmd
from repro.sim.errors import DeadlockError


class TestStickyWakes:
    def test_future_wake_received_while_ready(self):
        """An event for rank 1 fires (via rank 0's drain) at a timestamp
        beyond rank 1's clock while rank 1 is READY; rank 1 must still be
        woken when it blocks."""

        def body(r):
            s = current_scheduler()
            env = s.rank_env()
            env.setdefault("inbox", [])
            if r == 0:
                # schedule a delivery to rank 1 at t=5us, then run far past
                # it so the event fires during OUR drain
                def deliver():
                    s.rank_env(1).setdefault("inbox", []).append("msg")
                    s.wake(1, 5e-6)

                s.post(5e-6, deliver)
                s.charge(50e-6)
                return None
            # rank 1 stays at a tiny clock, then blocks
            s.charge(1e-6)
            while not env["inbox"]:
                s.block("waiting")
            assert s.now() >= 5e-6
            return env["inbox"][0]

        assert run_spmd(body, 2) == [None, "msg"]

    def test_multiple_future_wakes_all_delivered(self):
        """Several future-timestamped deliveries while READY: every one
        must eventually be seen (regression: the sticky wake used to keep
        only the earliest)."""

        def body(r):
            s = current_scheduler()
            env = s.rank_env()
            env.setdefault("inbox", [])
            if r == 0:
                for k in range(1, 4):
                    t = k * 5e-6

                    def deliver(t=t):
                        s.rank_env(1).setdefault("inbox", []).append(t)
                        s.wake(1, t)

                    s.post(t, deliver)
                s.charge(100e-6)
                return None
            s.charge(1e-6)
            got = []
            while len(got) < 3:
                while env["inbox"]:
                    m = env["inbox"].pop(0)
                    assert s.now() >= m  # never observed before its time
                    got.append(m)
                if len(got) < 3:
                    s.block("more")
            return got

        res = run_spmd(body, 2)
        assert res[1] == [k * 5e-6 for k in (1, 2, 3)]

    def test_spurious_past_wake_is_harmless(self):
        """A wake whose condition was already consumed just causes one
        extra predicate check."""

        def body(r):
            s = current_scheduler()
            env = s.rank_env()
            env.setdefault("n", 0)
            if r == 0:
                def bump():
                    env1 = s.rank_env(1)
                    env1["n"] = env1.get("n", 0) + 1
                    s.wake(1, 2e-6)
                    s.wake(1, 2e-6)  # duplicate wake, same instant

                s.post(2e-6, bump)
                s.charge(20e-6)
                return None
            while env["n"] == 0:
                s.block("bump")
            return env["n"]

        assert run_spmd(body, 2)[1] == 1


class TestInterleavingStress:
    def test_ring_relay_many_rounds(self):
        """A token circles a ring 20 times; total hops must be exact."""

        def body(r):
            s = current_scheduler()
            n = 8
            env = s.rank_env()
            env.setdefault("tokens", [])
            hops = 0
            rounds = 20

            def send_to(dst, value):
                def deliver(t=None):
                    s.rank_env(dst)["tokens"].append(value)
                    s.wake(dst, s2_time[0])

                s2_time = [s.now() + 1e-6]
                s.post(1e-6, deliver)

            if r == 0:
                send_to(1, 0)
            expected = rounds if r == 0 else rounds
            while hops < expected:
                while not env["tokens"]:
                    s.block("token")
                v = env["tokens"].pop(0)
                hops += 1
                if not (r == 0 and hops == rounds):
                    send_to((r + 1) % n, v + 1)
            return hops

        res = run_spmd(body, 8)
        assert all(h == 20 for h in res)

    def test_uneven_charges_keep_global_order(self):
        """Ranks with wildly different step sizes still observe events in
        nondecreasing time order."""
        observed = []

        def body(r):
            s = current_scheduler()
            step = [1e-7, 3e-6, 7e-6, 13e-6][r % 4]
            for _ in range(15):
                s.charge(step)
                observed.append((s.now(), r))

        run_spmd(body, 4)
        times = [t for t, _ in observed]
        assert times == sorted(times)

    def test_many_ranks_sleep_storm(self):
        """Hundreds of overlapping sleeps resolve without deadlock."""

        def body(r):
            s = current_scheduler()
            for i in range(5):
                s.sleep(((r * 7 + i * 3) % 11 + 1) * 1e-6)
            return round(s.now() * 1e9)

        res = run_spmd(body, 64)
        assert len(res) == 64 and all(t > 0 for t in res)


class TestDiagnostics:
    def test_snapshot_lists_states(self):
        sched = Scheduler(2)

        def body(r):
            current_scheduler().charge(1e-6)

        sched.run(body)
        snap = sched.snapshot()
        assert "rank 0" in snap and "DONE" in snap

    def test_deadlock_message_includes_reasons(self):
        def body(r):
            current_scheduler().block(f"custom-reason-{r}")

        with pytest.raises(DeadlockError) as ei:
            run_spmd(body, 3)
        msg = str(ei.value)
        for r in range(3):
            assert f"custom-reason-{r}" in msg
