"""Tests for the per-rank deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RankRandom, make_rank_rng


class TestRankRandom:
    def test_same_inputs_same_stream(self):
        a = RankRandom(0, 3)
        b = RankRandom(0, 3)
        assert [a.key64() for _ in range(5)] == [b.key64() for _ in range(5)]
        assert a.bytes(16) == b.bytes(16)

    def test_rank_independence(self):
        a = RankRandom(0, 0)
        b = RankRandom(0, 1)
        assert [a.key64() for _ in range(5)] != [b.key64() for _ in range(5)]

    def test_seed_independence(self):
        a = RankRandom(1, 0)
        b = RankRandom(2, 0)
        assert a.key64() != b.key64()

    def test_rank_stream_stable_under_job_growth(self):
        """Rank r's stream does not depend on how many ranks exist —
        the property the weak-scaling benchmarks rely on."""
        small_job = [RankRandom(0, r).key64() for r in range(2)]
        big_job = [RankRandom(0, r).key64() for r in range(8)]
        assert big_job[:2] == small_job

    def test_salted_spawn_differs_from_parent(self):
        a = RankRandom(0, 0)
        child = a.spawn("phase2")
        b = RankRandom(0, 0)
        assert child.key64() != b.key64()
        # spawning is itself deterministic
        assert RankRandom(0, 0).spawn("phase2").key64() == RankRandom(0, 0).spawn("phase2").key64()

    def test_bytes_length_and_determinism(self):
        r = RankRandom(7, 7)
        buf = r.bytes(100)
        assert len(buf) == 100
        assert buf == RankRandom(7, 7).bytes(100)

    def test_numpy_generator_available(self):
        r = RankRandom(0, 0)
        arr = r.np.standard_normal(10)
        assert arr.shape == (10,)
        assert np.array_equal(arr, RankRandom(0, 0).np.standard_normal(10))

    def test_factory_none_seed(self):
        assert make_rank_rng(None, 2).seed == make_rank_rng(0, 2).seed

    def test_keys_roughly_uniform(self):
        r = RankRandom(0, 0)
        keys = [r.key64() for _ in range(2000)]
        assert len(set(keys)) == 2000  # no collisions at this scale
        high_bits = sum(1 for k in keys if k >> 63)
        assert 800 < high_bits < 1200  # top bit ~ fair coin
