"""Tests pinning the §III progress-engine structure: defQ/actQ/compQ
observability, internal vs user progress, and charge accounting."""

import numpy as np
import pytest

import repro.upcxx as upcxx


def _exchange(n=4, dtype=np.float64):
    g = upcxx.new_array(dtype, n)
    return g, [upcxx.broadcast(g, root=r).wait() for r in range(upcxx.rank_n())]


class TestQueues:
    def test_actq_holds_inflight_op(self):
        """Between injection and completion, the operation sits in actQ."""

        def body():
            me = upcxx.rank_me()
            _g, ptrs = _exchange(1024)
            upcxx.barrier()
            rt = upcxx.runtime_here()
            if me == 0:
                fut = upcxx.rput(np.zeros(1024), ptrs[1])
                # injected (defQ drained by internal progress) but the ack
                # has not come back yet: active state
                assert len(rt.actQ) == 1
                assert "rput" in next(iter(rt.actQ.values()))
                fut.wait()
                assert len(rt.actQ) == 0
            upcxx.barrier()

        upcxx.run_spmd(body, 2, ppn=1)

    def test_internal_progress_promotes_but_does_not_execute(self):
        """§III: completions move to compQ at internal progress; only user
        progress drains compQ."""

        def body():
            me = upcxx.rank_me()
            _g, ptrs = _exchange(8)
            upcxx.barrier()
            rt = upcxx.runtime_here()
            if me == 0:
                p = upcxx.Promise()
                upcxx.rput(np.zeros(8), ptrs[1], cx=upcxx.operation_cx.as_promise(p))
                fut = p.finalize()
                # let the ack arrive without making user progress
                rt.sched.sleep(20e-6)
                rt.internal_progress()
                assert len(rt.compQ) >= 1  # promoted, not executed
                assert not fut.ready()
                upcxx.progress()  # user progress: executes compQ
                assert fut.ready()
            upcxx.barrier()

        upcxx.run_spmd(body, 2, ppn=1)

    def test_progress_counters(self):
        def body():
            rt = upcxx.runtime_here()
            before = rt.n_progress_calls
            upcxx.progress()
            upcxx.progress()
            assert rt.n_progress_calls == before + 2

        upcxx.run_spmd(body, 1)


class TestChargeAccounting:
    def test_rput_charges_injection_cost(self):
        def body():
            _g, ptrs = _exchange(8)
            upcxx.barrier()
            rt = upcxx.runtime_here()
            t0 = upcxx.sim_now()
            upcxx.rput(np.zeros(8), ptrs[(upcxx.rank_me() + 1) % 2], cx=upcxx.operation_cx.as_promise(upcxx.Promise()))
            dt = upcxx.sim_now() - t0
            # injection costs CPU immediately (>= the modeled inject cost)
            assert dt >= rt.cpu.t(rt.costs.rma_inject) * 0.99
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_compute_charges_exactly(self):
        def body():
            t0 = upcxx.sim_now()
            upcxx.compute(123e-6)
            return upcxx.sim_now() - t0

        dt = upcxx.run_spmd(body, 1)[0]
        assert dt == pytest.approx(123e-6)

    def test_knl_charges_scale_up(self):
        def one(platform):
            def body():
                rt = upcxx.runtime_here()
                t0 = upcxx.sim_now()
                rt.charge_sw(1e-6)
                return upcxx.sim_now() - t0

            return upcxx.run_spmd(body, 1, platform=platform)[0]

        assert one("knl") == pytest.approx(one("haswell") * 2.6)


class TestWaitSemantics:
    def test_wait_on_ready_future_is_cheap(self):
        def body():
            f = upcxx.make_future(1)
            t0 = upcxx.sim_now()
            f.wait()
            return upcxx.sim_now() - t0

        dt = upcxx.run_spmd(body, 1)[0]
        assert dt == 0.0  # no progress spin needed

    def test_nested_waits_inside_rpc_handler(self):
        """An RPC body may itself wait on communication (runtime reentry)."""

        def body():
            me = upcxx.rank_me()
            _g, ptrs = _exchange(4)
            upcxx.barrier()

            def handler(dest):
                # executes on rank 1; performs its own blocking rput to rank 2
                upcxx.rput(np.full(4, 9.0), dest).wait()
                return "stored"

            if me == 0:
                got = upcxx.rpc(1, handler, ptrs[2]).wait()
                assert got == "stored"
            upcxx.barrier()
            if me == 2:
                assert _g.local()[0] == 9.0
            upcxx.barrier()

        upcxx.run_spmd(body, 3)

    def test_then_callbacks_run_in_attachment_order(self):
        def body():
            log = []
            p = upcxx.Promise()
            p.require_anonymous(1)
            f = p.finalize()
            for i in range(4):
                f.then(lambda i=i: log.append(i))
            p.fulfill_anonymous(1)
            return log

        assert upcxx.run_spmd(body, 1) == [[0, 1, 2, 3]]


class TestSegmentPressure:
    def test_segment_exhaustion_raises_cleanly(self):
        from repro.gasnet.segment import SegmentAllocationError

        def body():
            with pytest.raises(SegmentAllocationError):
                upcxx.allocate(1 << 30)  # bigger than the segment

        upcxx.run_spmd(body, 1)

    def test_churn_reuses_memory(self):
        def body():
            peak = 0
            for _ in range(200):
                g = upcxx.new_array(np.float64, 1024)
                peak = max(peak, upcxx.segment_usage()["in_use"])
                upcxx.deallocate(g)
            assert upcxx.segment_usage()["in_use"] == 0
            return peak

        peak = upcxx.run_spmd(body, 1)[0]
        assert peak <= 2 * 8 * 1024  # no leak growth
