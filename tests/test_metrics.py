"""Op-lifecycle metrics, trace export, and the compQ-promotion fix.

Covers the observability layer end to end: histogram/sampling unit
behavior, zero-impact-when-disabled, a full observed aggregating-DHT run
(the acceptance workload), and the regression test for prompt promotion of
network-staged completions during user progress.
"""

import json

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.upcxx.runtime import CompQItem
from repro.util.metrics import Metrics, RankMetrics, DwellHistogram, QUEUE_NAMES, TRANSITIONS
from repro.util.trace import TraceBuffer
from repro.util.trace_export import chrome_trace, dumps_chrome_trace, dumps_metrics


class TestDwellHistogram:
    def test_log2_ns_buckets(self):
        h = DwellHistogram()
        h.add(0.0)  # bucket 0 (sub-ns)
        h.add(1e-9)  # [1, 2) ns
        h.add(3e-9)  # [2, 4) ns
        h.add(3.9e-9)  # [2, 4) ns
        h.add(1e-6)  # [512, 1024) ns
        d = h.as_dict()
        assert d["n"] == 5
        assert [0, 1] in d["buckets"]
        assert [1, 1] in d["buckets"]
        assert [2, 2] in d["buckets"]
        assert [512, 1] in d["buckets"]
        # bucket lower bounds ascend
        lows = [b[0] for b in d["buckets"]]
        assert lows == sorted(lows)

    def test_exact_aggregates(self):
        h = DwellHistogram()
        for v in (2e-6, 4e-6, 6e-6):
            h.add(v)
        assert h.n == 3
        assert h.minimum == pytest.approx(2e-6)
        assert h.maximum == pytest.approx(6e-6)
        assert h.mean == pytest.approx(4e-6)

    def test_negative_clamps_to_zero(self):
        h = DwellHistogram()
        h.add(-1e-9)
        assert h.minimum == 0.0
        assert h.as_dict()["buckets"] == [[0, 1]]

    def test_empty(self):
        d = DwellHistogram().as_dict()
        assert d == {
            "n": 0,
            "total_s": 0.0,
            "mean_s": 0.0,
            "min_s": 0.0,
            "max_s": 0.0,
            "p50_s": 0.0,
            "p95_s": 0.0,
            "p99_s": 0.0,
            "p999_s": 0.0,
            "buckets": [],
        }
        # empty-histogram aggregates are defined (0.0), never a raise
        h = DwellHistogram()
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_percentile_interpolates_within_bucket(self):
        h = DwellHistogram()
        # 100 samples, all in the [512, 1024) ns bucket
        for _ in range(100):
            h.add(600e-9)
        p50 = h.percentile(50)
        # linear interpolation: halfway through the bucket (768 ns), then
        # clamped into the observed [600, 600] ns range -> exactly 600 ns
        assert p50 == pytest.approx(600e-9)
        # spread across two buckets: p50 falls inside the first, strictly
        # between its edges (not snapped to the upper bound)
        h2 = DwellHistogram()
        for _ in range(60):
            h2.add(300e-9)  # [256, 512) bucket
        for _ in range(40):
            h2.add(900e-9)  # [512, 1024) bucket
        p50 = h2.percentile(50)
        assert 256e-9 < p50 < 512e-9
        assert h2.percentile(0) == pytest.approx(300e-9)   # clamped to min
        assert h2.percentile(100) == pytest.approx(900e-9)  # clamped to max


class TestDwellHistogramTail:
    """p999 (SLO tail) and cross-rank merge/rebuild semantics."""

    def test_p999_single_sample(self):
        h = DwellHistogram()
        h.add(3e-6)
        d = h.as_dict()
        # one sample: every percentile clamps to the exact observation
        assert d["p50_s"] == d["p99_s"] == d["p999_s"] == 3e-6

    def test_p999_between_p99_and_max(self):
        h = DwellHistogram()
        for _ in range(999):
            h.add(1e-6)
        h.add(1e-3)  # one outlier in the top 0.1%
        d = h.as_dict()
        assert d["p99_s"] <= d["p999_s"] <= d["max_s"]
        assert d["p999_s"] > d["p50_s"]

    def test_percentile_range_check(self):
        h = DwellHistogram()
        h.add(1e-6)
        with pytest.raises(ValueError):
            h.percentile(100.1)

    def test_merge_matches_combined_stream(self):
        a, b, both = DwellHistogram(), DwellHistogram(), DwellHistogram()
        xs = [1e-9, 5e-9, 2e-6, 7e-4]
        ys = [3e-9, 9e-6, 1e-3]
        for x in xs:
            a.add(x)
            both.add(x)
        for y in ys:
            b.add(y)
            both.add(y)
        a.merge(b)
        assert a.as_dict() == both.as_dict()

    def test_merge_empty_is_identity(self):
        a = DwellHistogram()
        a.add(2e-6)
        before = a.as_dict()
        a.merge(DwellHistogram())
        assert a.as_dict() == before
        empty = DwellHistogram()
        empty.merge(a)
        assert empty.as_dict() == a.as_dict()

    def test_from_dict_round_trip(self):
        h = DwellHistogram()
        for x in (0.0, 1e-9, 4e-6, 2.5e-3):
            h.add(x)
        d = h.as_dict()
        rebuilt = DwellHistogram.from_dict(d)
        out = rebuilt.as_dict()
        # total_s survives exactly; mean is derived from it
        assert out["n"] == d["n"] and out["buckets"] == d["buckets"]
        assert out["min_s"] == d["min_s"] and out["max_s"] == d["max_s"]
        assert out["p999_s"] == d["p999_s"]

    def test_from_dict_empty(self):
        d = DwellHistogram().as_dict()
        assert DwellHistogram.from_dict(d).as_dict() == d


class TestQueueSampling:
    def test_consecutive_duplicates_dedup(self):
        rm = RankMetrics(0)
        rm.sample_queues(1.0, 1, 0, 2, 0)
        rm.sample_queues(2.0, 1, 0, 2, 0)  # identical depths: dropped
        rm.sample_queues(3.0, 1, 0, 3, 0)
        assert len(rm.queue_samples) == 2

    def test_decimation_bounds_memory_deterministically(self):
        rm = RankMetrics(0)
        n = RankMetrics.MAX_QUEUE_SAMPLES * 4
        for i in range(n):
            rm.sample_queues(float(i), i % 7, 0, i % 5, 0)
        assert len(rm.queue_samples) < RankMetrics.MAX_QUEUE_SAMPLES
        assert rm._sample_stride > 1
        ts = [s[0] for s in rm.queue_samples]
        assert ts == sorted(ts)

    def test_queue_series_per_queue_dedup(self):
        rm = RankMetrics(0)
        rm.sample_queues(1.0, 0, 0, 1, 0)
        rm.sample_queues(2.0, 1, 0, 1, 0)  # compQ unchanged, defQ changed
        series = rm.queue_series()
        assert series["compQ"] == [[1.0, 1]]
        assert series["defQ"] == [[1.0, 0], [2.0, 1]]
        assert set(series) == set(QUEUE_NAMES)


def _agg_dht_body(updates_per_rank=48, batch_size=8, key_space=256):
    from repro.apps.dht import AggregatingCounter

    agg = AggregatingCounter(batch_size=batch_size)
    rng = upcxx.runtime_here().rng.spawn("metrics-test")
    upcxx.barrier()
    for _ in range(updates_per_rank):
        agg.add(rng.key64() % key_space, 1)
    agg.sync()
    upcxx.barrier()
    return upcxx.sim_now()


class TestObservedRun:
    """Acceptance workload: a Fig. 4a-style aggregating-DHT run."""

    N_RANKS = 4

    @pytest.fixture(scope="class")
    def observed(self):
        metrics = Metrics()
        trace = TraceBuffer()
        times = upcxx.run_spmd(_agg_dht_body, self.N_RANKS, ppn=2, seed=7, metrics=metrics, trace=trace)
        return metrics, trace, times

    def test_metrics_json_contents(self, observed):
        metrics, _trace, _times = observed
        md = json.loads(dumps_metrics(metrics))
        assert md["n_ranks"] == self.N_RANKS
        assert md["max_attentiveness_gap_s"] > 0.0
        transitions_seen = set()
        for rank_dict in md["ranks"]:
            # per-rank compQ depth time-series, with some actual depth
            compq = rank_dict["queues"]["compQ"]
            assert compq and any(depth > 0 for _t, depth in compq)
            assert rank_dict["ops"].get("rpc", {}).get("injected", 0) > 0
            assert rank_dict["attentiveness"]["n_user_progress"] > 0
            assert rank_dict["nic"]["injections"] > 0
            for kind_dict in rank_dict["dwell"].values():
                transitions_seen.update(kind_dict)
        # all three Fig. 2 transitions are measured somewhere in the job
        assert transitions_seen == set(TRANSITIONS)

    def test_trace_one_lane_per_rank(self, observed):
        metrics, trace, _times = observed
        doc = json.loads(dumps_chrome_trace(trace, metrics))
        events = doc["traceEvents"]
        lanes = {e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "thread_name"}
        assert lanes == {f"rank {r}" for r in range(self.N_RANKS)}
        assert {e["tid"] for e in events} == set(range(self.N_RANKS))
        # duration spans, instants and queue counters all present
        phases = {e["ph"] for e in events}
        assert {"X", "i", "C"} <= phases
        # every event is well-formed for the Chrome trace viewer
        for e in events:
            assert "ph" in e and "pid" in e and "tid" in e

    def test_observation_disabled_costs_nothing(self, observed):
        _metrics, _trace, times = observed
        baseline = upcxx.run_spmd(_agg_dht_body, self.N_RANKS, ppn=2, seed=7)
        disabled = upcxx.run_spmd(
            _agg_dht_body, self.N_RANKS, ppn=2, seed=7, metrics=Metrics(enabled=False)
        )
        # observation is purely passive: identical simulated times with
        # metrics on, off, or explicitly disabled
        assert times == baseline == disabled

    def test_disabled_metrics_not_installed(self):
        def body():
            rt = upcxx.runtime_here()
            assert rt.metrics is None
            assert rt.world.metrics is None

        upcxx.run_spmd(body, 1, metrics=Metrics(enabled=False))


class TestHarnessObservation:
    def test_observation_saves_both_files(self, tmp_path, monkeypatch):
        from repro.bench.harness import Observation, metrics_enabled

        monkeypatch.setenv("REPRO_METRICS", "1")
        assert metrics_enabled()
        obs = Observation.maybe("unit")
        assert obs is not None
        upcxx.run_spmd(_agg_dht_body, 2, ppn=1, metrics=obs.metrics, trace=obs.trace)
        mpath, tpath = obs.save(results_dir=str(tmp_path))
        with open(mpath) as fh:
            assert json.load(fh)["n_ranks"] == 2
        with open(tpath) as fh:
            assert json.load(fh)["traceEvents"]

    def test_observation_off_by_default(self, monkeypatch):
        from repro.bench.harness import Observation

        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert Observation.maybe("unit") is None


class TestCompQPromotion:
    """Regression: completions staged by the network while user progress is
    draining a busy compQ must be promoted each loop iteration, not only
    when compQ empties — otherwise fulfillment latency grows with queue
    depth instead of reflecting attentiveness."""

    CHAIN = 20
    ITEM_COST = 10e-6

    def test_ack_fulfills_mid_drain(self):
        def body():
            me = upcxx.rank_me()
            g = upcxx.new_array(np.float64, 8)
            ptrs = [upcxx.broadcast(g, root=r).wait() for r in range(2)]
            upcxx.barrier()
            rt = upcxx.runtime_here()
            if me == 0:
                # self-replenishing compQ: each item enqueues the next, so
                # compQ never drains until the whole chain has run
                def chain(i):
                    if i < self.CHAIN:
                        rt.enqueue_complete(CompQItem(self.ITEM_COST, lambda: chain(i + 1), "busywork"))

                done_at = []
                p = upcxx.Promise()
                upcxx.rput(np.zeros(8), ptrs[1], cx=upcxx.operation_cx.as_promise(p))
                fut = p.finalize()
                fut.then(lambda: done_at.append(upcxx.sim_now()))
                t0 = upcxx.sim_now()
                chain(0)
                upcxx.progress()
                assert fut.ready() and done_at
                # the ack lands a few microseconds in; prompt promotion
                # fulfills it after at most a couple of chain items instead
                # of after the full CHAIN * ITEM_COST drain
                assert done_at[0] - t0 < self.CHAIN * self.ITEM_COST / 2
            upcxx.barrier()

        upcxx.run_spmd(body, 2, ppn=1)
