"""Property and unit tests for the wire serialization format."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.upcxx import serialization as ser
from repro.upcxx.errors import SerializationError
from repro.upcxx.global_ptr import GlobalPtr
from repro.upcxx.view import View, make_view


class TestScalars:
    @pytest.mark.parametrize(
        "obj",
        [None, True, False, 0, -1, 2**62, -(2**62), 3.14159, float("inf"), "", "héllo", b"", b"bytes"],
    )
    def test_roundtrip(self, obj):
        assert ser.unpack(ser.pack(obj)) == obj

    def test_bigint(self):
        x = 2**200 + 17
        assert ser.unpack(ser.pack(x)) == x

    def test_nan(self):
        out = ser.unpack(ser.pack(float("nan")))
        assert out != out  # NaN


class TestContainers:
    def test_nested(self):
        obj = {"a": [1, 2, (3, "x")], "b": {"c": None}}
        assert ser.unpack(ser.pack(obj)) == obj

    def test_tuple_vs_list_preserved(self):
        assert isinstance(ser.unpack(ser.pack((1, 2))), tuple)
        assert isinstance(ser.unpack(ser.pack([1, 2])), list)

    def test_empty_containers(self):
        for obj in [(), [], {}]:
            assert ser.unpack(ser.pack(obj)) == obj


class TestNumpy:
    def test_array_roundtrip(self):
        a = np.arange(20.0).reshape(4, 5)
        b = ser.unpack(ser.pack(a))
        assert np.array_equal(a, b)
        assert b.dtype == a.dtype and b.shape == a.shape

    def test_dtypes(self):
        for dt in [np.int8, np.int32, np.int64, np.float32, np.float64, np.uint16]:
            a = np.array([1, 2, 3], dtype=dt)
            assert np.array_equal(ser.unpack(ser.pack(a)), a)

    def test_numpy_scalar_becomes_python(self):
        assert ser.unpack(ser.pack(np.int64(7))) == 7
        assert ser.unpack(ser.pack(np.float64(2.5))) == 2.5

    def test_noncontiguous_array(self):
        a = np.arange(20.0).reshape(4, 5)[:, ::2]
        assert np.array_equal(ser.unpack(ser.pack(a)), a)


class TestSpecialTypes:
    def test_global_ptr(self):
        p = GlobalPtr(3, 1024, np.float64, 17)
        q = ser.unpack(ser.pack(p))
        assert q == p

    def test_view_zero_copy(self):
        v = make_view(np.arange(10.0))
        out = ser.unpack(ser.pack(v))
        assert isinstance(out, View)
        assert np.array_equal(out.to_numpy(), np.arange(10.0))

    def test_dist_object_ref(self):
        r = ser.DistObjectRef(5, 7)
        assert ser.unpack(ser.pack(r)) == r

    def test_pickle_fallback(self):
        obj = complex(1, 2)
        assert ser.unpack(ser.pack(obj)) == obj

    def test_unserializable_raises(self):
        with pytest.raises(SerializationError):
            ser.pack(lambda x: x)  # local lambdas can't pickle


class TestMeasureAndCopyFree:
    def test_measure_matches_pack(self):
        obj = {"k": [1.0, 2.0, np.arange(5)]}
        assert ser.measure(obj) == len(ser.pack(obj))

    def test_view_bytes_counted_copy_free(self):
        v = make_view(np.arange(100.0))
        assert ser.copy_free_bytes(v) == 800
        assert ser.copy_free_bytes((1, v, [v])) == 1600
        assert ser.copy_free_bytes({"a": v}) == 800
        assert ser.copy_free_bytes(42) == 0

    def test_trailing_bytes_rejected(self):
        raw = ser.pack(1) + b"x"
        with pytest.raises(SerializationError):
            ser.unpack(raw)

    def test_truncated_rejected(self):
        raw = ser.pack("hello world")
        with pytest.raises(SerializationError):
            ser.unpack(raw[:-2])


# ------------------------------------------------------------- property tests
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
_json_like = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5),
        st.tuples(inner, inner),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=20,
)


@given(_json_like)
def test_roundtrip_property(obj):
    assert ser.unpack(ser.pack(obj)) == obj


@given(st.lists(st.floats(allow_nan=False, width=64), min_size=1, max_size=200))
def test_view_roundtrip_property(xs):
    v = make_view(np.asarray(xs))
    out = ser.unpack(ser.pack(v))
    assert np.array_equal(out.to_numpy(), np.asarray(xs))


@given(_json_like)
def test_measure_equals_len_pack(obj):
    assert ser.measure(obj) == len(ser.pack(obj))
