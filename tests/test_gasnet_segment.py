"""Unit and property tests for the shared-segment allocator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gasnet.segment import Segment, SegmentAllocationError


def test_simple_alloc_free():
    seg = Segment(4096, owner_rank=0)
    off = seg.allocate(100)
    assert seg.is_live(off)
    assert seg.bytes_in_use >= 100
    seg.deallocate(off)
    assert not seg.is_live(off)
    assert seg.bytes_in_use == 0
    assert seg.free_bytes == 4096


def test_alignment():
    seg = Segment(4096, owner_rank=0, align=64)
    a = seg.allocate(1)
    b = seg.allocate(1)
    assert a % 64 == 0 and b % 64 == 0
    assert b - a >= 64


def test_exhaustion_raises():
    seg = Segment(1024, owner_rank=0)
    seg.allocate(1024)
    with pytest.raises(SegmentAllocationError):
        seg.allocate(1)


def test_coalescing_allows_reuse():
    seg = Segment(1024, owner_rank=0, align=64)
    offs = [seg.allocate(256) for _ in range(4)]
    for off in offs:
        seg.deallocate(off)
    # after coalescing the full segment should be allocatable again
    big = seg.allocate(1024)
    assert big == 0


def test_write_read_roundtrip():
    seg = Segment(4096, owner_rank=0)
    off = seg.allocate(16)
    seg.write(off, b"hello world!!!!!")
    assert seg.read(off, 16) == b"hello world!!!!!"


def test_typed_view_is_zero_copy():
    seg = Segment(4096, owner_rank=0)
    off = seg.allocate(8 * 10)
    v = seg.view(off, np.float64, 10)
    v[:] = np.arange(10.0)
    raw = np.frombuffer(seg.read(off, 80), dtype=np.float64)
    assert np.array_equal(raw, np.arange(10.0))


def test_out_of_range_access_rejected():
    seg = Segment(128, owner_rank=0)
    with pytest.raises(ValueError):
        seg.read(120, 16)
    with pytest.raises(ValueError):
        seg.write(125, b"abcdef")
    with pytest.raises(ValueError):
        seg.view(124, np.float64, 1)


def test_double_free_rejected():
    seg = Segment(1024, owner_rank=0)
    off = seg.allocate(64)
    seg.deallocate(off)
    with pytest.raises(ValueError):
        seg.deallocate(off)


def test_zero_size_alloc_legal_and_distinct():
    # UPC++ allocate(0)/new_array<T>(0) are legal: the pointer is valid,
    # distinct, and freeable (it consumes one alignment unit internally)
    seg = Segment(1024, owner_rank=0, align=64)
    a = seg.allocate(0)
    b = seg.allocate(0)
    assert a != b
    assert seg.is_live(a) and seg.is_live(b)
    seg.deallocate(a)
    seg.deallocate(b)
    seg.check_invariants()
    assert seg.bytes_in_use == 0
    assert seg.free_bytes == 1024


def test_negative_size_alloc_rejected():
    seg = Segment(1024, owner_rank=0)
    with pytest.raises(ValueError):
        seg.allocate(-1)


def test_unknown_offset_free_rejected():
    seg = Segment(1024, owner_rank=0, align=64)
    off = seg.allocate(64)
    with pytest.raises(ValueError):
        seg.deallocate(off + 64)  # inside the segment, never allocated
    with pytest.raises(ValueError):
        seg.deallocate(1)  # misaligned, not a live allocation
    seg.deallocate(off)
    seg.check_invariants()


def test_three_way_merge():
    # freeing b last must merge hole-a + b + hole-c into one region
    seg = Segment(1024, owner_rank=0, align=64)
    a = seg.allocate(64)
    b = seg.allocate(64)
    c = seg.allocate(64)
    d = seg.allocate(64)  # guard so c's right neighbor is live
    seg.deallocate(a)
    seg.deallocate(c)
    assert len(seg._free) == 3  # [a], [c], tail after d
    seg.deallocate(b)
    seg.check_invariants()
    assert len(seg._free) == 2  # [a..c] merged, tail after d
    assert seg._free[0] == (a, 192)
    seg.deallocate(d)
    seg.check_invariants()
    assert seg._free == [(0, 1024)]


def test_left_only_and_right_only_merge():
    seg = Segment(1024, owner_rank=0, align=64)
    a = seg.allocate(64)
    b = seg.allocate(64)
    c = seg.allocate(64)
    _guard = seg.allocate(64)
    # left-only: free a, then b -> one hole [a, a+128)
    seg.deallocate(a)
    seg.deallocate(b)
    seg.check_invariants()
    assert (a, 128) in seg._free
    # right-only: free c -> merges with the [a, a+128) hole on its left
    # (c's right neighbor is the live guard); exercise the mirror case too
    seg.deallocate(c)
    seg.check_invariants()
    assert (a, 192) in seg._free
    # right-only proper: allocate fresh pair, free the right one first
    x = seg.allocate(64)
    y = seg.allocate(64)
    seg.deallocate(y)
    seg.deallocate(x)
    seg.check_invariants()
    assert not seg.is_live(x) and not seg.is_live(y)


def test_peak_tracking():
    seg = Segment(4096, owner_rank=0, align=64)
    a = seg.allocate(1024)
    b = seg.allocate(1024)
    seg.deallocate(a)
    seg.deallocate(b)
    assert seg.peak_in_use == 2048
    assert seg.bytes_in_use == 0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(1, 700)), min_size=1, max_size=120))
def test_allocator_invariants_random_workload(ops):
    """Random alloc/free sequences never corrupt the free list."""
    seg = Segment(16 * 1024, owner_rank=0)
    live = []
    for do_alloc, size in ops:
        if do_alloc or not live:
            try:
                off = seg.allocate(size)
            except SegmentAllocationError:
                continue
            live.append(off)
        else:
            idx = size % len(live)
            seg.deallocate(live.pop(idx))
        seg.check_invariants()
    for off in live:
        seg.deallocate(off)
    seg.check_invariants()
    assert seg.free_bytes == 16 * 1024


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(1, 300), min_size=1, max_size=40))
def test_no_overlap_between_live_allocations(sizes):
    seg = Segment(64 * 1024, owner_rank=0)
    spans = []
    for n in sizes:
        off = seg.allocate(n)
        spans.append((off, off + n))
    spans.sort()
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2, "allocations overlap"
