"""Unit tests for futures/promises outside of (and inside) SPMD regions.

Futures with no runtime attached can be exercised standalone as long as no
``then``/``wait`` is used; chained behavior is tested inside run_spmd.
"""

import pytest

import repro.upcxx as upcxx
from repro.upcxx.errors import UpcxxError
from repro.upcxx.future import Future, Promise, make_future, to_future, when_all


class TestBasics:
    def test_make_future_ready(self):
        f = make_future(42)
        assert f.ready()
        assert f.result() == 42

    def test_empty_future_result_is_none(self):
        f = make_future()
        assert f.ready()
        assert f.result() is None

    def test_multivalue_future(self):
        f = make_future(1, 2, 3)
        assert f.result() == (1, 2, 3)

    def test_result_before_ready_raises(self):
        f = Future()
        with pytest.raises(UpcxxError):
            f.result()

    def test_to_future(self):
        assert to_future(5).result() == 5
        f = make_future(7)
        assert to_future(f) is f


class TestPromise:
    def test_finalize_readies_with_no_deps(self):
        p = Promise()
        f = p.finalize()
        assert f.ready()

    def test_require_then_fulfill(self):
        p = Promise()
        p.require_anonymous(3)
        f = p.finalize()
        assert not f.ready()
        p.fulfill_anonymous(2)
        assert not f.ready()
        p.fulfill_anonymous(1)
        assert f.ready()

    def test_fulfill_result_carries_value(self):
        p = Promise()
        p.require_anonymous(1)
        f = p.finalize()
        p.fulfill_result("done")
        assert f.result() == "done"

    def test_get_future_same_future(self):
        p = Promise()
        assert p.get_future() is p.get_future()

    def test_overfulfill_raises(self):
        p = Promise()
        p.finalize()
        with pytest.raises(UpcxxError):
            p.fulfill_anonymous(1)

    def test_double_finalize_raises(self):
        p = Promise()
        p.finalize()
        with pytest.raises(UpcxxError):
            p.finalize()

    def test_double_result_raises(self):
        p = Promise()
        p.require_anonymous(2)
        p.fulfill_result(1)
        with pytest.raises(UpcxxError):
            p.fulfill_result(2)

    def test_negative_counts_rejected(self):
        p = Promise()
        with pytest.raises(ValueError):
            p.require_anonymous(-1)
        with pytest.raises(ValueError):
            p.fulfill_anonymous(-1)


class TestWhenAllStandalone:
    def test_when_all_ready_inputs(self):
        f = when_all(make_future(1), make_future(2, 3), make_future())
        assert f.ready()
        assert f.result() == (1, 2, 3)

    def test_when_all_plain_values(self):
        f = when_all(1, make_future(2), "x")
        assert f.result() == (1, 2, "x")

    def test_when_all_pending(self):
        p = Promise()
        p.require_anonymous(1)
        pf = p.finalize()
        f = when_all(make_future(1), pf)
        assert not f.ready()
        p.fulfill_result(9)
        assert f.ready()
        assert f.result() == (1, 9)


class TestChainingInSpmd:
    def test_then_on_ready_future(self):
        def body():
            f = make_future(10).then(lambda x: x * 2)
            assert f.ready()
            return f.result()

        assert upcxx.run_spmd(body, 1) == [20]

    def test_then_chain_flattens_futures(self):
        def body():
            f = make_future(5).then(lambda x: make_future(x + 1)).then(lambda x: x * 10)
            return f.wait()

        assert upcxx.run_spmd(body, 1) == [60]

    def test_then_none_gives_empty_future(self):
        def body():
            f = make_future(1).then(lambda x: None)
            assert f.ready()
            return f.result()

        assert upcxx.run_spmd(body, 1) == [None]

    def test_then_on_pending_promise_runs_at_fulfill(self):
        def body():
            p = Promise()
            p.require_anonymous(1)
            f = p.finalize()
            log = []
            f.then(lambda: log.append("ran"))
            assert log == []
            p.fulfill_anonymous(1)
            assert log == ["ran"]

        upcxx.run_spmd(body, 1)

    def test_when_all_then_unpacks_all_values(self):
        def body():
            f = when_all(make_future(1), make_future(2), make_future(3))
            return f.then(lambda a, b, c: a + b + c).wait()

        assert upcxx.run_spmd(body, 1) == [6]

    def test_wait_returns_value(self):
        def body():
            return make_future("v").wait()

        assert upcxx.run_spmd(body, 1) == ["v"]

    def test_then_charges_time(self):
        def body():
            t0 = upcxx.sim_now()
            make_future(1).then(lambda x: x)
            return upcxx.sim_now() > t0

        assert upcxx.run_spmd(body, 1) == [True]
