"""Tests for rpc/rpc_ff, views, and RPC progression semantics."""

import numpy as np
import pytest

import repro.upcxx as upcxx


class TestRpcBasics:
    def test_rpc_returns_value(self):
        def body():
            me = upcxx.rank_me()
            if me == 0:
                return upcxx.rpc(1, lambda a, b: a + b, 20, 22).wait()
            upcxx.barrier()
            return None

        res = upcxx.run_spmd(_with_tail_barrier(lambda: upcxx.rpc(1, lambda a, b: a + b, 20, 22).wait() if upcxx.rank_me() == 0 else None), 2)
        assert res[0] == 42

    def test_rpc_runs_on_target(self):
        def body():
            if upcxx.rank_me() == 0:
                got = upcxx.rpc(1, upcxx.rank_me).wait()
                assert got == 1
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_rpc_empty_return_gives_empty_future(self):
        def body():
            if upcxx.rank_me() == 0:
                assert upcxx.rpc(1, lambda: None).wait() is None
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_rpc_returning_future_flattens(self):
        def body():
            if upcxx.rank_me() == 0:
                # the remote body returns a future; the reply carries its value
                got = upcxx.rpc(1, lambda: upcxx.make_future(99)).wait()
                assert got == 99
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_rpc_to_self(self):
        def body():
            return upcxx.rpc(upcxx.rank_me(), lambda x: x * 2, 21).wait()

        assert upcxx.run_spmd(body, 2) == [42, 42]

    def test_rpc_out_of_range_target(self):
        def body():
            with pytest.raises(upcxx.UpcxxError):
                upcxx.rpc(99, lambda: None)

        upcxx.run_spmd(body, 2)

    def test_rpc_ff_no_reply(self):
        hits = []

        def body():
            if upcxx.rank_me() == 0:
                upcxx.rpc_ff(1, lambda: hits.append(upcxx.rank_me()))
            upcxx.barrier()

        upcxx.run_spmd(body, 2)
        assert hits == [1]

    def test_rpc_numpy_payload_roundtrip(self):
        def body():
            if upcxx.rank_me() == 0:
                arr = np.arange(100, dtype=np.float64)
                got = upcxx.rpc(1, lambda a: float(a.sum()), arr).wait()
                assert got == pytest.approx(arr.sum())
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_rpc_view_zero_copy_at_target(self):
        def body():
            if upcxx.rank_me() == 0:
                data = np.arange(64, dtype=np.float64)
                v = upcxx.make_view(data)
                got = upcxx.rpc(1, lambda view: float(sum(view)), v).wait()
                assert got == pytest.approx(data.sum())
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_many_concurrent_rpcs_with_when_all(self):
        def body():
            me = upcxx.rank_me()
            n = upcxx.rank_n()
            futs = [upcxx.rpc((me + i) % n, lambda: upcxx.rank_me()) for i in range(n)]
            vals = upcxx.when_all(*futs).wait()
            assert sorted(vals) == list(range(n))
            upcxx.barrier()

        upcxx.run_spmd(body, 4)


class TestAttentiveness:
    def test_rpc_stalls_until_target_progress(self):
        """A target buried in computation executes the RPC only at progress."""
        times = {}

        def body():
            me = upcxx.rank_me()
            upcxx.barrier()
            if me == 0:
                t0 = upcxx.sim_now()
                upcxx.rpc(1, lambda: None).wait()
                times["rtt"] = upcxx.sim_now() - t0
            else:
                upcxx.compute(200e-6)  # long, progress-free computation
                upcxx.progress()
            upcxx.barrier()

        upcxx.run_spmd(body, 2, ppn=1)
        # the round trip is dominated by the target's inattentiveness
        assert times["rtt"] > 150e-6

    def test_attentive_target_is_fast(self):
        times = {}

        def body():
            me = upcxx.rank_me()
            upcxx.barrier()
            if me == 0:
                t0 = upcxx.sim_now()
                upcxx.rpc(1, lambda: None).wait()
                times["rtt"] = upcxx.sim_now() - t0
                upcxx.rpc_ff(1, _stop_flag.set_)
            else:
                _stop_flag.clear()
                while not _stop_flag.on:
                    upcxx.progress()
                    if not _stop_flag.on:
                        upcxx.runtime_here().sched.block("spin for stop")
            upcxx.barrier()

        upcxx.run_spmd(body, 2, ppn=1)
        assert times["rtt"] < 20e-6


class _StopFlag:
    def __init__(self):
        self.on = False

    def set_(self):
        self.on = True

    def clear(self):
        self.on = False


_stop_flag = _StopFlag()


def _with_tail_barrier(fn):
    def body():
        r = fn()
        upcxx.barrier()
        return r

    return body


class TestProgressEngineQueues:
    def test_counters_track_operations(self):
        def body():
            me = upcxx.rank_me()
            if me == 0:
                upcxx.rpc(1, lambda: 7).wait()
            upcxx.barrier()
            rt = upcxx.runtime_here()
            return (rt.n_rpcs_sent, rt.n_rpcs_executed)

        res = upcxx.run_spmd(body, 2)
        sent = sum(r[0] for r in res)
        executed = sum(r[1] for r in res)
        # at least our explicit rpc plus barrier traffic
        assert sent >= 3 and executed == sent

    def test_compq_only_drained_by_user_progress(self):
        """Arrived RPCs sit in compQ during pure computation."""
        observed = {}

        def body():
            me = upcxx.rank_me()
            upcxx.barrier()
            if me == 0:
                for _ in range(5):
                    upcxx.rpc_ff(1, lambda: None)
                upcxx.barrier()
            else:
                rt = upcxx.runtime_here()
                # sleep lets wire deliveries land without making progress
                rt.sched.sleep(50e-6)
                rt.internal_progress()  # promote arrivals into compQ
                observed["queued"] = len(rt.compQ)
                upcxx.barrier()

        upcxx.run_spmd(body, 2, ppn=1)
        assert observed["queued"] >= 5
