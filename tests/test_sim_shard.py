"""Unit tests for the sharded backend's building blocks.

The end-to-end three-way determinism matrix lives in
``test_backend_determinism.py``; this module pins the pieces the window
protocol is built from — the cloudpickle-lite function marshaller, the
raw-blob frame codec, shard planning, cross-shard failure transport, the
canonical trace order, and the sharded-specific error surfaces.
"""

import os

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.sim import shard as shard_mod
from repro.sim.coop import Scheduler
from repro.sim.errors import RankFailure, SimError
from repro.sim.shard import (
    SHARDS_ENV,
    _BLOB_MIN,
    _decode_frame,
    _describe_failure,
    _dumps,
    _encode_frame,
    _join_blobs,
    _loads,
    _rebuild_failure,
    _split_blobs,
    ShardedScheduler,
)
from repro.util.trace import TraceBuffer


# ------------------------------------------------------- function marshalling
def _module_level_fn(x):
    return x + 1


def test_marshal_module_function_by_reference():
    fn = _loads(_dumps(_module_level_fn))
    assert fn is _module_level_fn  # same module in-process: by-ref pickle


def test_marshal_lambda_by_value():
    fn = _loads(_dumps(lambda x: x * 3))
    assert fn(14) == 42


def test_marshal_closure_cells():
    base = 100

    def add(x):
        return base + x

    fn = _loads(_dumps(add))
    assert fn(7) == 107


def test_marshal_defaults_and_kwdefaults():
    def f(a, b=10, *, c=20):
        return a + b + c

    fn = _loads(_dumps(f))
    assert fn(1) == 31
    assert fn(1, b=2, c=3) == 6


def test_marshal_globals_bound_by_module():
    # a lambda referencing a module global resolves it post-transport
    fn = _loads(_dumps(lambda: _module_level_fn(41)))
    assert fn() == 42


def test_marshal_nested_payload():
    payload = ("tag", [lambda: 7, {"k": (1, 2.5, b"xy")}], None)
    out = _loads(_dumps(payload))
    assert out[0] == "tag"
    assert out[1][0]() == 7
    assert out[1][1] == {"k": (1, 2.5, b"xy")}


# ------------------------------------------------------------- blob framing
def test_split_blobs_extracts_large_bytes():
    big = bytes(range(256)) * 4
    small = b"tiny"
    blobs = []
    marked = _split_blobs((1, big, [small, big], {"d": bytearray(big)}), blobs)
    assert len(blobs) == 3  # two bytes + one bytearray, small stays inline
    assert _join_blobs(marked, blobs) == (1, big, [small, big], {"d": big})


def test_split_blobs_threshold():
    just_under = b"x" * (_BLOB_MIN - 1)
    at = b"y" * _BLOB_MIN
    blobs = []
    marked = _split_blobs((just_under, at), blobs)
    assert blobs == [at]
    assert _join_blobs(marked, blobs) == (just_under, at)


def test_frame_roundtrip_with_blobs():
    big = os.urandom(1024)
    envs = [(1.5e-6, (0.0, 0, 1), "put", (0, 1, 0, big, 7))]
    blobs = []
    wire_envs = [(ft, st, k, _split_blobs(m, blobs)) for ft, st, k, m in envs]
    frame = _encode_frame(0, (0, wire_envs), blobs)
    kind, payload, rblobs = _decode_frame(frame)
    assert kind == 0
    n_done, renvs = payload
    assert n_done == 0
    restored = [(ft, st, k, _join_blobs(m, rblobs)) for ft, st, k, m in renvs]
    assert restored == envs


def test_frame_roundtrip_empty():
    kind, payload, blobs = _decode_frame(_encode_frame(2, None, []))
    assert kind == 2 and payload is None and blobs == []


# ------------------------------------------------------------ shard planning
def _plan(n_ranks, ppn, shards_env):
    from repro.gasnet.machine import Machine
    from repro.gasnet.network import AriesNetwork

    old = os.environ.get(SHARDS_ENV)
    os.environ[SHARDS_ENV] = str(shards_env)
    try:
        s = Scheduler(n_ranks, backend="sharded")
        s.configure_sharding(Machine.for_ranks(n_ranks, ppn, name="haswell"), AriesNetwork())
        n = s._plan_shards()
        return n, s._parts, s._shard_of_rank
    finally:
        if old is None:
            os.environ.pop(SHARDS_ENV, None)
        else:
            os.environ[SHARDS_ENV] = old


def test_plan_even_split():
    n, parts, of_rank = _plan(8, 1, 4)  # 8 nodes, 4 shards
    assert n == 4
    assert parts == [(0, 2), (2, 4), (4, 6), (6, 8)]
    assert of_rank == [0, 0, 1, 1, 2, 2, 3, 3]


def test_plan_clamped_to_node_count():
    n, parts, _ = _plan(4, 2, 16)  # 2 nodes: at most 2 shards
    assert n == 2
    assert parts == [(0, 2), (2, 4)]


def test_plan_uneven_nodes():
    n, parts, of_rank = _plan(6, 2, 2)  # 3 nodes over 2 shards
    assert n == 2
    assert [hi - lo for lo, hi in parts] == [4, 2]  # nodes 0,1 | 2
    assert of_rank == [0, 0, 0, 0, 1, 1]


def test_plan_single_shard_without_machine():
    old = os.environ.get(SHARDS_ENV)
    os.environ[SHARDS_ENV] = "8"
    try:
        s = Scheduler(4, backend="sharded")  # no configure_sharding
        assert s._plan_shards() == 1
        assert s._parts == [(0, 4)]
    finally:
        if old is None:
            os.environ.pop(SHARDS_ENV, None)
        else:
            os.environ[SHARDS_ENV] = old


def test_plan_rejects_bad_env(monkeypatch):
    monkeypatch.setenv(SHARDS_ENV, "0")
    s = Scheduler(2, backend="sharded")
    with pytest.raises(ValueError):
        s._plan_shards()


# ------------------------------------------------------- failure transport
def test_failure_roundtrip_rank_failure():
    exc = RankFailure(3, "ValueError: boom")
    exc.__cause__ = ValueError("boom")
    kind, msg, rank, cause = _describe_failure(exc)
    rebuilt = _rebuild_failure(kind, msg, rank, cause)
    assert isinstance(rebuilt, RankFailure)
    assert rebuilt.rank == 3
    assert str(rebuilt) == str(exc)
    assert isinstance(rebuilt.__cause__, ValueError)
    assert str(rebuilt.__cause__) == "boom"


def test_failure_roundtrip_unknown_type():
    rebuilt = _rebuild_failure("KeyError", "'missing'", None)
    assert isinstance(rebuilt, SimError)
    assert "KeyError" in str(rebuilt)


# ------------------------------------------------------- canonical traces
def test_trace_canonical_sort_is_stable_per_rank():
    t = TraceBuffer()
    t.record(2.0, 0, "block", "b")
    t.record(1.0, 1, "block", "x")
    t.record(1.0, 0, "block", "a")
    t.record(1.0, 1, "resume", "x")  # same (time, rank): order must persist
    ev = t.canonical_events()
    assert [(e.time, e.rank, e.kind) for e in ev] == [
        (1.0, 0, "block"),
        (1.0, 1, "block"),
        (1.0, 1, "resume"),
        (2.0, 0, "block"),
    ]


def test_trace_extend_canonical_merges_shards():
    a, b = TraceBuffer(), TraceBuffer()
    a.record(1.0, 0, "block", "p")
    a.record(3.0, 0, "resume", "p")
    b.record(1.0, 1, "block", "q")
    b.record(2.0, 1, "resume", "q")
    merged = TraceBuffer()
    merged.extend_canonical([list(a._events), list(b._events)])
    single = TraceBuffer()
    for t_, r_, k_, d_ in [(1.0, 0, "block", "p"), (1.0, 1, "block", "q"),
                           (2.0, 1, "resume", "q"), (3.0, 0, "resume", "p")]:
        single.record(t_, r_, k_, d_)
    assert merged.canonical_fingerprint() == single.canonical_fingerprint()
    assert merged.fingerprint() == single.fingerprint()


# ----------------------------------------------------- sharded error surfaces
def _with_shards(n):
    os.environ[SHARDS_ENV] = str(n)


@pytest.fixture
def two_shards(monkeypatch):
    monkeypatch.setenv(SHARDS_ENV, "2")


def test_cross_shard_segment_access_raises(two_shards):
    """Reading a remote rank's segment directly (global_ptr.local() style)
    cannot work across address spaces and must raise a clear SimError."""

    def body():
        me = upcxx.rank_me()
        ptr = upcxx.new_array(np.uint8, 16)
        remote = upcxx.broadcast(ptr, root=0).wait()
        upcxx.barrier()
        if me == 1:
            # rank 1 (shard 1) touching rank 0's segment (shard 0)
            upcxx.runtime_here().world.conduit.segment(remote.rank)
        upcxx.barrier()
        return me

    with pytest.raises(RankFailure, match="segment access"):
        upcxx.run_spmd(body, 2, platform="haswell", ppn=1, backend="sharded")


def test_sharded_rank_failure_has_origin_rank(two_shards):
    def body():
        if upcxx.rank_me() == 1:
            raise RuntimeError("deliberate")
        upcxx.barrier()
        return 0

    with pytest.raises(RankFailure) as ei:
        upcxx.run_spmd(body, 2, platform="haswell", ppn=1, backend="sharded")
    assert ei.value.rank == 1
    assert "deliberate" in str(ei.value)


def test_sharded_deadlock_message_matches_single_process(two_shards):
    from repro.gasnet.machine import Machine
    from repro.gasnet.network import AriesNetwork
    from repro.sim.coop import current_scheduler
    from repro.sim.errors import DeadlockError

    def body(r):
        s = current_scheduler()
        s.charge(1e-6)
        if r == 1:
            s.block("waiting forever")
        return r

    msgs = {}
    for backend in ("coroutines", "sharded"):
        sched = Scheduler(4, backend=backend)
        if backend == "sharded":
            sched.configure_sharding(Machine.for_ranks(4, 1, name="haswell"), AriesNetwork())
        with pytest.raises(DeadlockError) as ei:
            sched.run(body)
        msgs[backend] = str(ei.value)
    assert msgs["coroutines"] == msgs["sharded"]


def test_sharded_profile_writes_for_remote_shard_rank(two_shards, monkeypatch, tmp_path):
    """REPRO_PROFILE=1 profiles the shard that owns REPRO_PROFILE_RANK and
    writes REPRO_PROFILE_OUT from that worker process."""
    from repro.util import profile as prof

    out = tmp_path / "rank3.pstats"
    monkeypatch.setenv(prof.PROFILE_ENV, "1")
    monkeypatch.setenv(prof.PROFILE_RANK_ENV, "3")
    monkeypatch.setenv(prof.PROFILE_OUT_ENV, str(out))

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        fut = upcxx.rpc((me + 1) % n, lambda: upcxx.rank_me())
        assert fut.wait() == (me + 1) % n
        upcxx.barrier()
        return upcxx.sim_now()

    upcxx.run_spmd(body, 4, platform="haswell", ppn=1, backend="sharded")
    assert out.exists() and out.stat().st_size > 0
    import pstats

    assert len(pstats.Stats(str(out)).stats) > 0


def test_sharded_metrics_merge_across_shards(two_shards):
    """Per-rank metrics collected in the workers surface in the parent's
    Metrics object, for every rank on every shard."""
    from repro.util.metrics import Metrics

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        dest = upcxx.broadcast(upcxx.new_array(np.uint8, 64), root=1).wait()
        upcxx.barrier()
        if me == 0:
            upcxx.rput(bytes(64), dest).wait()
        upcxx.barrier()
        return upcxx.sim_now()

    results = {}
    for backend in ("coroutines", "sharded"):
        m = Metrics(enabled=True)
        upcxx.run_spmd(body, 2, platform="haswell", ppn=1, backend=backend, metrics=m)
        results[backend] = m
    m_c, m_s = results["coroutines"], results["sharded"]
    assert set(m_s._ranks) == set(m_c._ranks)
    # rank 0 injected the put on shard 0; identical accounting either way
    assert m_s.rank(0).nic_bytes == m_c.rank(0).nic_bytes


def test_sharded_scheduler_is_scheduler():
    s = Scheduler(2, backend="sharded")
    assert isinstance(s, ShardedScheduler)
    assert isinstance(s, Scheduler)
