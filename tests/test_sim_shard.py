"""Unit tests for the sharded backend's building blocks.

The end-to-end three-way determinism matrix lives in
``test_backend_determinism.py``; this module pins the pieces the window
protocol is built from — the cloudpickle-lite function marshaller, the
raw-blob frame codec, shard planning, cross-shard failure transport, the
canonical trace order, and the sharded-specific error surfaces.
"""

import os

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.sim import shard as shard_mod
from repro.sim.coop import Scheduler
from repro.sim.errors import RankFailure, SimError
from repro.sim.shard import (
    LOOKAHEAD_ENV,
    SHARDS_ENV,
    _BLOB_MIN,
    _Channel,
    _K_CATCH,
    _K_ENV2,
    _K_FAIL,
    _K_SENT,
    _SENTINEL_FRAME,
    _decode_env_frame,
    _decode_frame,
    _describe_failure,
    _dumps,
    _encode_env_frame,
    _encode_frame,
    _join_blobs,
    _loads,
    _rebuild_failure,
    _split_blobs,
    ShardedScheduler,
)
from repro.util.trace import TraceBuffer

_INF = float("inf")


# ------------------------------------------------------- function marshalling
def _module_level_fn(x):
    return x + 1


def test_marshal_module_function_by_reference():
    fn = _loads(_dumps(_module_level_fn))
    assert fn is _module_level_fn  # same module in-process: by-ref pickle


def test_marshal_lambda_by_value():
    fn = _loads(_dumps(lambda x: x * 3))
    assert fn(14) == 42


def test_marshal_closure_cells():
    base = 100

    def add(x):
        return base + x

    fn = _loads(_dumps(add))
    assert fn(7) == 107


def test_marshal_defaults_and_kwdefaults():
    def f(a, b=10, *, c=20):
        return a + b + c

    fn = _loads(_dumps(f))
    assert fn(1) == 31
    assert fn(1, b=2, c=3) == 6


def test_marshal_globals_bound_by_module():
    # a lambda referencing a module global resolves it post-transport
    fn = _loads(_dumps(lambda: _module_level_fn(41)))
    assert fn() == 42


def test_marshal_nested_payload():
    payload = ("tag", [lambda: 7, {"k": (1, 2.5, b"xy")}], None)
    out = _loads(_dumps(payload))
    assert out[0] == "tag"
    assert out[1][0]() == 7
    assert out[1][1] == {"k": (1, 2.5, b"xy")}


# ------------------------------------------------------------- blob framing
def test_split_blobs_extracts_large_bytes():
    big = bytes(range(256)) * 4
    small = b"tiny"
    blobs = []
    marked = _split_blobs((1, big, [small, big], {"d": bytearray(big)}), blobs)
    assert len(blobs) == 3  # two bytes + one bytearray, small stays inline
    assert _join_blobs(marked, blobs) == (1, big, [small, big], {"d": big})


def test_split_blobs_threshold():
    just_under = b"x" * (_BLOB_MIN - 1)
    at = b"y" * _BLOB_MIN
    blobs = []
    marked = _split_blobs((just_under, at), blobs)
    assert blobs == [at]
    assert _join_blobs(marked, blobs) == (just_under, at)


def test_frame_roundtrip_with_blobs():
    big = os.urandom(1024)
    envs = [(1.5e-6, (0.0, 0, 1), "put", (0, 1, 0, big, 7))]
    blobs = []
    wire_envs = [(ft, st, k, _split_blobs(m, blobs)) for ft, st, k, m in envs]
    frame = _encode_frame(0, (0, wire_envs), blobs)
    kind, payload, rblobs = _decode_frame(frame)
    assert kind == 0
    n_done, renvs = payload
    assert n_done == 0
    restored = [(ft, st, k, _join_blobs(m, rblobs)) for ft, st, k, m in renvs]
    assert restored == envs


def test_frame_roundtrip_empty():
    kind, payload, blobs = _decode_frame(_encode_frame(2, None, []))
    assert kind == 2 and payload is None and blobs == []


# --------------------------------------------- protocol-v2 batch frame codec
def test_env_frame_roundtrip_empty_batch():
    frame = _encode_env_frame(3, 1.5e-6, _INF, [])
    assert frame[0] == _K_ENV2
    n_done, h, e_other, envs = _decode_env_frame(frame)
    assert (n_done, h, e_other, envs) == (3, 1.5e-6, _INF, [])


def test_env_frame_hot_put_meta_skips_pickler():
    """The hot cross-shard put shape (flat scalar/bytes tuple) must ride
    the tagged serializer's raw length-prefixed path: the payload bytes
    appear verbatim in the frame, no pickle opcodes around them."""
    big = os.urandom(300)  # > the 256 B raw-frame boundary
    meta = (0, 1, 64, big, 7, None, None, 300, None)
    env = (2.5e-6, (1.25e-6, 0, 3), "put", meta)
    frame = _encode_env_frame(1, 9.5e-7, 2.5e-6, [env])
    assert big in frame  # raw path: verbatim payload bytes
    n_done, h, e_other, envs = _decode_env_frame(frame)
    assert (n_done, h, e_other) == (1, 9.5e-7, 2.5e-6)
    assert envs == [env]


def test_env_frame_roundtrip_mixed_batch():
    """Packed metas, pickled callables, nested containers, and the
    whole-envelope fallback for a stamp outside the fixed layout — all in
    one batch, in order."""
    small = b"x" * 255  # just under the raw-frame boundary
    at = b"y" * 256  # exactly at it
    envs = [
        (1e-6, (0.0, 0, 1), "put", (0, 1, 0, small, 1, None, None, 255, None)),
        (2e-6, (0.5e-6, 1, 2, 3), "am", (1, 0, 7, at, 256, 9, {"k": (1, 2.5)})),
        (3e-6, (0.0, 2, 3), "rpc", (lambda x: x * 3, 14)),
        (4e-6, ("odd-stamp",), "wake", 5),  # stamp[0] not a float: raw fallback
        (5e-6, (0.0, 3, 4), "cpl", (11, True, None)),
    ]
    n_done, h, e_other, out = _decode_env_frame(_encode_env_frame(0, _INF, _INF, envs))
    assert (n_done, h, e_other) == (0, _INF, _INF)
    assert len(out) == len(envs)
    for got, want in zip(out, envs):
        if callable(want[3][0] if isinstance(want[3], tuple) else None):
            assert got[:3] == want[:3]
            fn, arg = got[3]
            assert fn(arg) == 42
        else:
            assert got == want


def test_env_frame_fuzz_roundtrip():
    """Seeded fuzz over batch sizes, stamp shapes, payload sizes straddling
    the 256 B raw boundary, and meta shapes."""
    import random

    rng = random.Random(0xC0FFEE)
    kinds = ["put", "get", "am", "cpl", "wake", "custom-kind"]
    for _ in range(60):
        envs = []
        for _ in range(rng.randrange(0, 7)):
            stamp = tuple(
                [rng.random() * 1e-5]
                + [rng.randrange(-(2**40), 2**40) for _ in range(rng.randrange(0, 4))]
            )
            shape = rng.randrange(4)
            if shape == 0:
                meta = (
                    rng.randrange(16),
                    rng.randrange(16),
                    rng.randrange(4096),
                    os.urandom(rng.choice([0, 1, 255, 256, 257, 600])),
                    rng.randrange(100),
                    None,
                    None,
                    rng.randrange(2**20),
                    None,
                )
            elif shape == 1:
                meta = {"a": [1, 2.5, "s"], "b": os.urandom(rng.randrange(300))}
            elif shape == 2:
                meta = rng.randrange(1000)
            else:
                meta = (rng.randrange(16), (rng.random(), rng.randrange(8), 1), b"tok")
            envs.append(
                (rng.random() * 1e-4, stamp, rng.choice(kinds), meta)
            )
        hdr = (
            rng.randrange(64),
            rng.choice([_INF, rng.random() * 1e-4]),
            rng.choice([_INF, rng.random() * 1e-4]),
        )
        got = _decode_env_frame(_encode_env_frame(hdr[0], hdr[1], hdr[2], envs))
        assert got == (hdr[0], hdr[1], hdr[2], envs)


# ----------------------------------------------- protocol-v2 channel barrier
def _channel_pair():
    import multiprocessing as mp

    a, b = mp.Pipe()
    return _Channel(0, {1: a}), _Channel(1, {0: b})


def _on_thread(fn):
    """Run ``fn`` on a thread, return a handle whose .result() joins."""
    import threading

    box = {}

    def run():
        try:
            box["value"] = fn()
        except BaseException as exc:  # surfaced by .result()
            box["error"] = exc

    t = threading.Thread(target=run)
    t.start()

    class H:
        def result(self):
            t.join(timeout=30)
            assert not t.is_alive(), "peer side of the exchange hung"
            if "error" in box:
                raise box["error"]
            return box["value"]

    return H()


def test_exchange_window_single_barrier_and_sentinels():
    c0, c1 = _channel_pair()
    env = (2e-6, (0.0, 0, 1), "wake", 3)

    # window 1: 0 ships an envelope, 1 is idle — both pay a full frame
    # (first exchange: no cached header to fall back on)
    peer = _on_thread(lambda: c1.exchange_window({}, 0, _INF, False))
    inc0, done0, fail0, floor0, traffic0 = c0.exchange_window({1: [env]}, 0, 1e-6, False)
    inc1, done1, fail1, floor1, traffic1 = peer.result()
    assert inc0 == [] and not fail0
    assert inc1 == [env] and not fail1
    assert floor0 == _INF  # 1 advertised (h=inf, e=inf)
    assert floor1 == 1e-6  # 0's piggybacked pre-insertion horizon
    assert traffic0 and traffic1
    assert c0.n_sentinels_sent == 0 and c1.n_sentinels_sent == 0
    assert c0.n_env_sent == 1 and c1.n_env_recv == 1

    # window 2: both idle, headers unchanged — one byte each way
    b0_before, b1_before = c0.bytes_sent, c1.bytes_sent
    peer = _on_thread(lambda: c1.exchange_window({}, 0, _INF, False))
    inc0, _, _, floor0, traffic0 = c0.exchange_window({}, 0, 1e-6, False)
    inc1, _, _, floor1, traffic1 = peer.result()
    assert inc0 == [] and inc1 == []
    assert floor0 == _INF and floor1 == 1e-6  # cached headers still in force
    assert not traffic0 and not traffic1
    assert c0.n_sentinels_sent == 1 and c1.n_sentinels_sent == 1
    assert c0.bytes_sent - b0_before == 1 == len(_SENTINEL_FRAME)
    assert c1.bytes_sent - b1_before == 1

    # window 3: 1's header changes (a rank finished) — full frame one way,
    # sentinel the other
    peer = _on_thread(lambda: c1.exchange_window({}, 1, _INF, False))
    inc0, done0, _, _, _ = c0.exchange_window({}, 0, 1e-6, False)
    peer.result()
    assert done0 == 1  # the refreshed header reached us
    assert c0.n_sentinels_sent == 2 and c1.n_sentinels_sent == 1


def test_exchange_catchup_roundtrip():
    c0, c1 = _channel_pair()
    peer = _on_thread(lambda: c1.exchange_catchup(_INF, 3))
    m0, done0 = c0.exchange_catchup(_INF, 1)
    m1, done1 = peer.result()
    assert m0 == _INF and m1 == _INF
    assert done0 == 3 and done1 == 1


def test_exchange_window_fail_frame():
    c0, c1 = _channel_pair()
    peer = _on_thread(lambda: c1.exchange_window({}, 0, _INF, True))
    _, _, fail_seen, _, _ = c0.exchange_window({}, 0, 1e-6, False)
    peer.result()
    assert fail_seen


def test_sentinel_before_any_header_raises():
    c0, _c1 = _channel_pair()
    conn1 = _c1.conns[0]
    peer = _on_thread(lambda: (conn1.send_bytes(_SENTINEL_FRAME), conn1.recv_bytes()))
    with pytest.raises(SimError, match="sentinel before any header"):
        c0.exchange_window({}, 0, 1e-6, False)
    peer.result()


def test_frame_kind_bytes_are_distinct():
    assert len({_K_ENV2, _K_SENT, _K_CATCH, _K_FAIL}) == 4
    assert _SENTINEL_FRAME == bytes([_K_SENT])


# ------------------------------------------------------------ shard planning
def _plan(n_ranks, ppn, shards_env):
    from repro.gasnet.machine import Machine
    from repro.gasnet.network import AriesNetwork

    old = os.environ.get(SHARDS_ENV)
    os.environ[SHARDS_ENV] = str(shards_env)
    try:
        s = Scheduler(n_ranks, backend="sharded")
        s.configure_sharding(Machine.for_ranks(n_ranks, ppn, name="haswell"), AriesNetwork())
        n = s._plan_shards()
        return n, s._parts, s._shard_of_rank
    finally:
        if old is None:
            os.environ.pop(SHARDS_ENV, None)
        else:
            os.environ[SHARDS_ENV] = old


def test_plan_even_split():
    n, parts, of_rank = _plan(8, 1, 4)  # 8 nodes, 4 shards
    assert n == 4
    assert parts == [(0, 2), (2, 4), (4, 6), (6, 8)]
    assert of_rank == [0, 0, 1, 1, 2, 2, 3, 3]


def test_plan_clamped_to_node_count():
    n, parts, _ = _plan(4, 2, 16)  # 2 nodes: at most 2 shards
    assert n == 2
    assert parts == [(0, 2), (2, 4)]


def test_plan_uneven_nodes():
    n, parts, of_rank = _plan(6, 2, 2)  # 3 nodes over 2 shards
    assert n == 2
    assert [hi - lo for lo, hi in parts] == [4, 2]  # nodes 0,1 | 2
    assert of_rank == [0, 0, 0, 0, 1, 1]


def test_plan_single_shard_without_machine():
    old = os.environ.get(SHARDS_ENV)
    os.environ[SHARDS_ENV] = "8"
    try:
        s = Scheduler(4, backend="sharded")  # no configure_sharding
        assert s._plan_shards() == 1
        assert s._parts == [(0, 4)]
    finally:
        if old is None:
            os.environ.pop(SHARDS_ENV, None)
        else:
            os.environ[SHARDS_ENV] = old


def test_plan_rejects_bad_env(monkeypatch):
    monkeypatch.setenv(SHARDS_ENV, "0")
    s = Scheduler(2, backend="sharded")
    with pytest.raises(ValueError):
        s._plan_shards()


# ------------------------------------------------------- failure transport
def test_failure_roundtrip_rank_failure():
    exc = RankFailure(3, "ValueError: boom")
    exc.__cause__ = ValueError("boom")
    kind, msg, rank, cause = _describe_failure(exc)
    rebuilt = _rebuild_failure(kind, msg, rank, cause)
    assert isinstance(rebuilt, RankFailure)
    assert rebuilt.rank == 3
    assert str(rebuilt) == str(exc)
    assert isinstance(rebuilt.__cause__, ValueError)
    assert str(rebuilt.__cause__) == "boom"


def test_failure_roundtrip_unknown_type():
    rebuilt = _rebuild_failure("KeyError", "'missing'", None)
    assert isinstance(rebuilt, SimError)
    assert "KeyError" in str(rebuilt)


# ------------------------------------------------------- canonical traces
def test_trace_canonical_sort_is_stable_per_rank():
    t = TraceBuffer()
    t.record(2.0, 0, "block", "b")
    t.record(1.0, 1, "block", "x")
    t.record(1.0, 0, "block", "a")
    t.record(1.0, 1, "resume", "x")  # same (time, rank): order must persist
    ev = t.canonical_events()
    assert [(e.time, e.rank, e.kind) for e in ev] == [
        (1.0, 0, "block"),
        (1.0, 1, "block"),
        (1.0, 1, "resume"),
        (2.0, 0, "block"),
    ]


def test_trace_extend_canonical_merges_shards():
    a, b = TraceBuffer(), TraceBuffer()
    a.record(1.0, 0, "block", "p")
    a.record(3.0, 0, "resume", "p")
    b.record(1.0, 1, "block", "q")
    b.record(2.0, 1, "resume", "q")
    merged = TraceBuffer()
    merged.extend_canonical([list(a._events), list(b._events)])
    single = TraceBuffer()
    for t_, r_, k_, d_ in [(1.0, 0, "block", "p"), (1.0, 1, "block", "q"),
                           (2.0, 1, "resume", "q"), (3.0, 0, "resume", "p")]:
        single.record(t_, r_, k_, d_)
    assert merged.canonical_fingerprint() == single.canonical_fingerprint()
    assert merged.fingerprint() == single.fingerprint()


# ----------------------------------------------------- sharded error surfaces
def _with_shards(n):
    os.environ[SHARDS_ENV] = str(n)


@pytest.fixture
def two_shards(monkeypatch):
    monkeypatch.setenv(SHARDS_ENV, "2")


def test_cross_shard_segment_access_raises(two_shards):
    """Reading a remote rank's segment directly (global_ptr.local() style)
    cannot work across address spaces and must raise a clear SimError."""

    def body():
        me = upcxx.rank_me()
        ptr = upcxx.new_array(np.uint8, 16)
        remote = upcxx.broadcast(ptr, root=0).wait()
        upcxx.barrier()
        if me == 1:
            # rank 1 (shard 1) touching rank 0's segment (shard 0)
            upcxx.runtime_here().world.conduit.segment(remote.rank)
        upcxx.barrier()
        return me

    with pytest.raises(RankFailure, match="segment access"):
        upcxx.run_spmd(body, 2, platform="haswell", ppn=1, backend="sharded")


def test_sharded_rank_failure_has_origin_rank(two_shards):
    def body():
        if upcxx.rank_me() == 1:
            raise RuntimeError("deliberate")
        upcxx.barrier()
        return 0

    with pytest.raises(RankFailure) as ei:
        upcxx.run_spmd(body, 2, platform="haswell", ppn=1, backend="sharded")
    assert ei.value.rank == 1
    assert "deliberate" in str(ei.value)


def test_sharded_deadlock_message_matches_single_process(two_shards):
    from repro.gasnet.machine import Machine
    from repro.gasnet.network import AriesNetwork
    from repro.sim.coop import current_scheduler
    from repro.sim.errors import DeadlockError

    def body(r):
        s = current_scheduler()
        s.charge(1e-6)
        if r == 1:
            s.block("waiting forever")
        return r

    msgs = {}
    for backend in ("coroutines", "sharded"):
        sched = Scheduler(4, backend=backend)
        if backend == "sharded":
            sched.configure_sharding(Machine.for_ranks(4, 1, name="haswell"), AriesNetwork())
        with pytest.raises(DeadlockError) as ei:
            sched.run(body)
        msgs[backend] = str(ei.value)
    assert msgs["coroutines"] == msgs["sharded"]


def test_sharded_profile_writes_for_remote_shard_rank(two_shards, monkeypatch, tmp_path):
    """REPRO_PROFILE=1 profiles the shard that owns REPRO_PROFILE_RANK and
    writes REPRO_PROFILE_OUT from that worker process."""
    from repro.util import profile as prof

    out = tmp_path / "rank3.pstats"
    monkeypatch.setenv(prof.PROFILE_ENV, "1")
    monkeypatch.setenv(prof.PROFILE_RANK_ENV, "3")
    monkeypatch.setenv(prof.PROFILE_OUT_ENV, str(out))

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        fut = upcxx.rpc((me + 1) % n, lambda: upcxx.rank_me())
        assert fut.wait() == (me + 1) % n
        upcxx.barrier()
        return upcxx.sim_now()

    upcxx.run_spmd(body, 4, platform="haswell", ppn=1, backend="sharded")
    assert out.exists() and out.stat().st_size > 0
    import pstats

    assert len(pstats.Stats(str(out)).stats) > 0


def test_sharded_metrics_merge_across_shards(two_shards):
    """Per-rank metrics collected in the workers surface in the parent's
    Metrics object, for every rank on every shard."""
    from repro.util.metrics import Metrics

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        dest = upcxx.broadcast(upcxx.new_array(np.uint8, 64), root=1).wait()
        upcxx.barrier()
        if me == 0:
            upcxx.rput(bytes(64), dest).wait()
        upcxx.barrier()
        return upcxx.sim_now()

    results = {}
    for backend in ("coroutines", "sharded"):
        m = Metrics(enabled=True)
        upcxx.run_spmd(body, 2, platform="haswell", ppn=1, backend=backend, metrics=m)
        results[backend] = m
    m_c, m_s = results["coroutines"], results["sharded"]
    assert set(m_s._ranks) == set(m_c._ranks)
    # rank 0 injected the put on shard 0; identical accounting either way
    assert m_s.rank(0).nic_bytes == m_c.rank(0).nic_bytes


def test_sharded_scheduler_is_scheduler():
    s = Scheduler(2, backend="sharded")
    assert isinstance(s, ShardedScheduler)
    assert isinstance(s, Scheduler)
