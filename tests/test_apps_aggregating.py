"""Tests for the aggregating DHT counter (HipMer-style batching)."""

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.apps.dht import AggregatingCounter


class TestAggregatingCounter:
    def test_counts_exact_after_sync(self):
        def body():
            me = upcxx.rank_me()
            counter = AggregatingCounter(batch_size=8)
            upcxx.barrier()
            # every rank increments the same 20 keys 3 times
            for _ in range(3):
                for k in range(20):
                    counter.add(k)
            counter.sync()
            vals = [counter.count(k).wait() for k in range(20)]
            upcxx.barrier()
            return vals

        res = upcxx.run_spmd(body, 4)
        expected = 3 * 4
        for vals in res:
            assert vals == [expected] * 20

    def test_deltas_accumulate(self):
        def body():
            counter = AggregatingCounter(batch_size=4)
            upcxx.barrier()
            counter.add(7, delta=upcxx.rank_me() + 1)
            counter.sync()
            v = counter.count(7).wait()
            upcxx.barrier()
            return v

        res = upcxx.run_spmd(body, 3)
        assert res[0] == 1 + 2 + 3

    def test_partial_buffers_flushed_by_sync(self):
        def body():
            counter = AggregatingCounter(batch_size=1000)  # never auto-flushes
            upcxx.barrier()
            counter.add(42, delta=5)
            counter.sync()
            v = counter.count(42).wait()
            upcxx.barrier()
            return v

        res = upcxx.run_spmd(body, 2)
        assert res[0] == 10

    def test_batching_reduces_messages(self):
        def run(batch):
            stats = {}

            def body():
                counter = AggregatingCounter(batch_size=batch)
                upcxx.barrier()
                rng = upcxx.runtime_here().rng.spawn("agg")
                for _ in range(128):
                    counter.add(rng.key64() % 512)
                counter.sync()
                upcxx.barrier()
                if upcxx.rank_me() == 0:
                    stats["sent"] = counter.batches_sent

            upcxx.run_spmd(body, 4)
            return stats["sent"]

        assert run(64) < run(1) / 10

    def test_batching_improves_simulated_time(self):
        def run(batch):
            out = {}

            def body():
                counter = AggregatingCounter(batch_size=batch)
                upcxx.barrier()
                rng = upcxx.runtime_here().rng.spawn("agg-t")
                t0 = upcxx.sim_now()
                for _ in range(256):
                    counter.add(rng.key64() % 1024)
                counter.sync()
                upcxx.barrier()
                out["t"] = upcxx.sim_now() - t0

            upcxx.run_spmd(body, 4, ppn=1)
            return out["t"]

        # aggregation amortizes per-message software costs
        assert run(64) < run(1) * 0.5

    def test_invalid_batch_size(self):
        def body():
            with pytest.raises(ValueError):
                AggregatingCounter(batch_size=0)

        upcxx.run_spmd(body, 1)

    def test_total_mass_conserved(self):
        def body():
            counter = AggregatingCounter(batch_size=16)
            upcxx.barrier()
            rng = upcxx.runtime_here().rng.spawn("mass")
            n_adds = 100
            for _ in range(n_adds):
                counter.add(rng.key64() % 64)
            counter.sync()
            local = sum(counter.local_items().values())
            total = upcxx.reduce_all(local, "+").wait()
            upcxx.barrier()
            return total

        res = upcxx.run_spmd(body, 4)
        assert all(t == 400 for t in res)
