"""Unit tests for View semantics and the completion-object machinery."""

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.upcxx.completion import Completion, operation_cx, remote_cx, resolve
from repro.upcxx.view import View, make_view


class TestView:
    def test_make_view_from_various(self):
        assert len(make_view(np.arange(5.0))) == 5
        assert len(make_view([1.0, 2.0])) == 2
        v = make_view(np.arange(3))
        assert make_view(v) is v  # idempotent

    def test_iteration_and_indexing(self):
        v = make_view(np.array([10.0, 20.0, 30.0]))
        assert list(v) == [10.0, 20.0, 30.0]
        assert v[1] == 20.0
        assert v.dtype == np.float64
        assert v.nbytes == 24

    def test_from_iterable(self):
        v = View.from_iterable(range(4), dtype=np.int64)
        assert list(v) == [0, 1, 2, 3]

    def test_noncontiguous_source_is_compacted(self):
        a = np.arange(10.0)[::2]
        v = make_view(a)
        assert np.array_equal(v.to_numpy(), a)
        assert v.to_numpy().flags["C_CONTIGUOUS"]

    def test_view_through_rpc_is_window_not_copyable_alias(self):
        """Target-side views alias the network buffer; mutating the source
        after send must not change what the target received."""

        def body():
            if upcxx.rank_me() == 0:
                data = np.ones(16)
                fut = upcxx.rpc(1, lambda v: float(sum(v)), upcxx.make_view(data))
                data[:] = 999.0  # mutate after injection
                assert fut.wait() == 16.0
            upcxx.barrier()

        upcxx.run_spmd(body, 2)


class TestCompletionObjects:
    def test_default_is_future(self):
        def body():
            p, fut = resolve(None, upcxx.runtime_here())
            assert fut is not None and not fut.ready()
            p.fulfill_anonymous(1)
            assert fut.ready()

        upcxx.run_spmd(body, 1)

    def test_as_promise_registers_dependency(self):
        def body():
            user_p = upcxx.Promise()
            p, fut = resolve(operation_cx.as_promise(user_p), upcxx.runtime_here())
            assert fut is None and p is user_p
            f = user_p.finalize()
            assert not f.ready()  # the op's dependency is pending
            p.fulfill_anonymous(1)
            assert f.ready()

        upcxx.run_spmd(body, 1)

    def test_remote_only_has_no_local_tracking(self):
        def body():
            p, fut = resolve(remote_cx.as_rpc(lambda: None), upcxx.runtime_here())
            assert p is None and fut is None

        upcxx.run_spmd(body, 1)

    def test_with_remote_rpc_combination(self):
        cx = operation_cx.as_future().with_remote_rpc(print, 1, 2)
        assert cx.kind == "future"
        assert cx.remote_rpc[1] == (1, 2)

    def test_unknown_kind_rejected(self):
        def body():
            with pytest.raises(ValueError):
                resolve(Completion(kind="smoke"), upcxx.runtime_here())

        upcxx.run_spmd(body, 1)

    def test_one_promise_many_mixed_ops(self):
        """A single promise can track rputs AND atomics together."""

        def body():
            me = upcxx.rank_me()
            g = upcxx.new_array(np.int64, 8)
            g.local()[:] = 0
            ptrs = [upcxx.broadcast(g, root=r).wait() for r in range(2)]
            ad = upcxx.AtomicDomain(["add"], np.int64)
            upcxx.barrier()
            if me == 0:
                p = upcxx.Promise()
                upcxx.rput(7, ptrs[1][0], cx=operation_cx.as_promise(p))
                ad.add(ptrs[1][1], 5, cx=operation_cx.as_promise(p))
                upcxx.rget(ptrs[1][0], cx=operation_cx.as_promise(p))
                p.finalize().wait()
            upcxx.barrier()
            return list(map(int, g.local()[:2]))

        res = upcxx.run_spmd(body, 2)
        assert res[1] == [7, 5]
