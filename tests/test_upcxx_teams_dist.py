"""Tests for teams, collectives, distributed objects, and atomics."""

import numpy as np
import pytest

import repro.upcxx as upcxx


class TestTeams:
    def test_world_team(self):
        def body():
            t = upcxx.team_world()
            assert t.rank_n() == upcxx.rank_n()
            assert t.rank_me() == upcxx.rank_me()
            assert t[0] == 0
            return t.uid

        assert upcxx.run_spmd(body, 3) == [0, 0, 0]

    def test_local_team_groups_by_node(self):
        def body():
            lt = upcxx.local_team()
            return sorted(lt.members)

        res = upcxx.run_spmd(body, 4, ppn=2)
        assert res[0] == [0, 1] and res[1] == [0, 1]
        assert res[2] == [2, 3] and res[3] == [2, 3]

    def test_create_subteam_explicit(self):
        def body():
            me = upcxx.rank_me()
            world = upcxx.team_world()
            if me in (0, 2):
                sub = world.create_subteam([0, 2])
                assert sub.rank_n() == 2
                assert sub.from_world(2) == 1
            upcxx.barrier()

        upcxx.run_spmd(body, 4)

    def test_split_by_parity(self):
        def body():
            me = upcxx.rank_me()
            world = upcxx.team_world()
            sub = world.split(color=me % 2, key=me)
            upcxx.barrier()
            return (sorted(sub.members), sub.rank_me())

        res = upcxx.run_spmd(body, 4)
        assert res[0][0] == [0, 2] and res[1][0] == [1, 3]
        assert res[2][1] == 1  # rank 2 is second in the even team

    def test_split_key_controls_order(self):
        def body():
            me = upcxx.rank_me()
            world = upcxx.team_world()
            sub = world.split(color=0, key=-me)  # reversed order
            upcxx.barrier()
            return sub.members

        res = upcxx.run_spmd(body, 3)
        assert res[0] == [2, 1, 0]

    def test_subteam_collectives(self):
        def body():
            me = upcxx.rank_me()
            world = upcxx.team_world()
            sub = world.split(color=me % 2, key=me)
            total = upcxx.reduce_all(me, "+", team=sub).wait()
            upcxx.barrier()
            return total

        res = upcxx.run_spmd(body, 4)
        assert res[0] == res[2] == 0 + 2
        assert res[1] == res[3] == 1 + 3


class TestCollectives:
    def test_barrier_synchronizes_time(self):
        def body():
            me = upcxx.rank_me()
            upcxx.compute(me * 10e-6)  # staggered arrival
            upcxx.barrier()
            return upcxx.sim_now()

        res = upcxx.run_spmd(body, 4)
        slowest_arrival = 3 * 10e-6
        assert all(t >= slowest_arrival for t in res)

    def test_barrier_async_overlaps(self):
        def body():
            f = upcxx.barrier_async()
            # we can keep working while the barrier is in flight
            x = sum(range(100))
            f.wait()
            return x

        assert upcxx.run_spmd(body, 4) == [4950] * 4

    def test_broadcast_value(self):
        def body():
            me = upcxx.rank_me()
            v = upcxx.broadcast("payload" if me == 2 else None, root=2).wait()
            upcxx.barrier()
            return v

        assert upcxx.run_spmd(body, 5) == ["payload"] * 5

    def test_broadcast_numpy(self):
        def body():
            me = upcxx.rank_me()
            data = np.arange(16.0) if me == 0 else None
            v = upcxx.broadcast(data, root=0).wait()
            upcxx.barrier()
            return float(v.sum())

        assert upcxx.run_spmd(body, 4) == [120.0] * 4

    def test_reduce_one_sum(self):
        def body():
            me = upcxx.rank_me()
            r = upcxx.reduce_one(me + 1, "+", root=0).wait()
            upcxx.barrier()
            return r

        res = upcxx.run_spmd(body, 6)
        assert res[0] == 21
        assert all(r is None for r in res[1:])

    def test_reduce_all_max(self):
        def body():
            me = upcxx.rank_me()
            r = upcxx.reduce_all(me * 7 % 5, "max").wait()
            upcxx.barrier()
            return r

        vals = [r * 7 % 5 for r in range(5)]
        assert upcxx.run_spmd(body, 5) == [max(vals)] * 5

    def test_reduce_all_custom_op(self):
        def body():
            me = upcxx.rank_me()
            r = upcxx.reduce_all([me], lambda a, b: a + b).wait()
            upcxx.barrier()
            return r

        assert upcxx.run_spmd(body, 3) == [[0, 1, 2]] * 3

    def test_many_barriers_in_sequence(self):
        def body():
            for _ in range(10):
                upcxx.barrier()
            return True

        assert all(upcxx.run_spmd(body, 8))

    def test_non_power_of_two_team_sizes(self):
        for n in (3, 5, 7):
            def body():
                upcxx.barrier()
                return upcxx.reduce_all(1, "+").wait()

            assert upcxx.run_spmd(body, n) == [n] * n


class TestDistObject:
    def test_dist_object_value_and_fetch(self):
        def body():
            me = upcxx.rank_me()
            dobj = upcxx.DistObject(me * 100)
            upcxx.barrier()
            got = dobj.fetch(1).wait()
            upcxx.barrier()
            return got

        assert upcxx.run_spmd(body, 3) == [100, 100, 100]

    def test_rpc_translates_dist_object_to_local_rep(self):
        def body():
            me = upcxx.rank_me()
            dobj = upcxx.DistObject({"rank": me})
            upcxx.barrier()
            if me == 0:
                got = upcxx.rpc(2, lambda d: d.value["rank"], dobj).wait()
                assert got == 2
            upcxx.barrier()

        upcxx.run_spmd(body, 3)

    def test_rpc_before_construction_is_deferred(self):
        """UPC++ defers RPCs that name a dist_object not yet constructed."""

        def body():
            me = upcxx.rank_me()
            if me == 0:
                dobj = upcxx.DistObject("early")
                # rank 1 constructs its representative 100us later
                got = upcxx.rpc(1, lambda d: d.value, dobj).wait()
                assert got == "late"
            else:
                upcxx.runtime_here().sched.sleep(100e-6)
                upcxx.DistObject("late")
                # stay attentive so deferred RPC can complete
                upcxx.barrier()
                return
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_creation_order_gives_matching_ids(self):
        def body():
            a = upcxx.DistObject("a")
            b = upcxx.DistObject("b")
            upcxx.barrier()
            assert a.index == 0 and b.index == 1
            other = (upcxx.rank_me() + 1) % upcxx.rank_n()
            got = upcxx.rpc(other, lambda d: d.value, b).wait()
            upcxx.barrier()
            return got

        assert upcxx.run_spmd(body, 2) == ["b", "b"]


class TestAtomics:
    def test_fetch_add_serializes(self):
        def body():
            me = upcxx.rank_me()
            ad = upcxx.AtomicDomain(["fetch_add", "load"], np.int64)
            g = upcxx.new_array(np.int64, 1)
            g.local()[0] = 0
            counter = upcxx.broadcast(g, root=0).wait()
            upcxx.barrier()
            olds = [ad.fetch_add(counter, 1).wait() for _ in range(5)]
            upcxx.barrier()
            final = ad.load(counter).wait() if me == 0 else None
            upcxx.barrier()
            return (olds, final)

        res = upcxx.run_spmd(body, 4)
        assert res[0][1] == 20  # 4 ranks x 5 increments
        all_olds = sorted(x for olds, _ in res for x in olds)
        assert all_olds == list(range(20))  # every ticket unique

    def test_store_load(self):
        def body():
            ad = upcxx.AtomicDomain(["store", "load"], np.int64)
            g = upcxx.new_array(np.int64, 1)
            tgt = upcxx.broadcast(g, root=1).wait()
            upcxx.barrier()
            if upcxx.rank_me() == 0:
                ad.store(tgt, 123).wait()
            upcxx.barrier()
            return ad.load(tgt).wait()

        assert upcxx.run_spmd(body, 2) == [123, 123]

    def test_compare_exchange(self):
        def body():
            ad = upcxx.AtomicDomain(["compare_exchange", "load"], np.int64)
            g = upcxx.new_array(np.int64, 1)
            g.local()[0] = 5
            tgt = upcxx.broadcast(g, root=0).wait()
            upcxx.barrier()
            if upcxx.rank_me() == 1:
                old = ad.compare_exchange(tgt, 5, 9).wait()
                assert old == 5
                old2 = ad.compare_exchange(tgt, 5, 11).wait()
                assert old2 == 9  # failed CAS
            upcxx.barrier()
            return ad.load(tgt).wait()

        assert upcxx.run_spmd(body, 2) == [9, 9]

    def test_undeclared_op_rejected(self):
        def body():
            ad = upcxx.AtomicDomain(["load"], np.int64)
            g = upcxx.new_array(np.int64, 1)
            with pytest.raises(upcxx.UpcxxError):
                ad.add(g, 1)
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_dtype_mismatch_rejected(self):
        def body():
            ad = upcxx.AtomicDomain(["load"], np.int64)
            g = upcxx.new_array(np.float64, 1)
            with pytest.raises(upcxx.UpcxxError):
                ad.load(g)

        upcxx.run_spmd(body, 1)

    def test_min_max(self):
        def body():
            ad = upcxx.AtomicDomain(["min", "max", "load"], np.int64)
            g = upcxx.new_array(np.int64, 1)
            g.local()[0] = 50
            tgt = upcxx.broadcast(g, root=0).wait()
            upcxx.barrier()
            me = upcxx.rank_me()
            ad.max(tgt, 10 + me).wait()
            ad.min(tgt, 60 + me).wait()
            upcxx.barrier()
            return ad.load(tgt).wait()

        assert upcxx.run_spmd(body, 3) == [50, 50, 50]
