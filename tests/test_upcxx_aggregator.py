"""Tests for repro.upcxx.aggregator — the runtime aggregation subsystem.

Covers the AggStore surface the apps build on: pluggable combines,
counting quiescence, dwell-deadline flushing, credit flow control (and
its backpressure accounting), the hot-key read cache with watcher-based
invalidation, and the stats/conduit counter plumbing.
"""

import pytest

import repro.upcxx as upcxx
from repro.upcxx.aggregator import (
    COMBINES,
    AggStore,
    combine_add,
    combine_max,
    combine_min,
    combine_replace,
    default_route,
)


class TestCombines:
    def test_builtins(self):
        assert combine_add(2, 3) == 5
        assert combine_replace(2, 3) == 3
        assert combine_min(2, 3) == 2
        assert combine_max(2, 3) == 3
        assert set(COMBINES) == {"+", "replace", "min", "max"}

    def test_route_is_deterministic_and_in_range(self):
        for k in (0, 1, 7, 123456789, "alpha", (3, 4)):
            t = default_route(k, 8)
            assert 0 <= t < 8
            assert default_route(k, 8) == t


class TestAggStoreCore:
    def test_invalid_parameters(self):
        def body():
            with pytest.raises(ValueError):
                AggStore("+", batch_size=0)
            with pytest.raises(ValueError):
                AggStore("+", batch_size=4, credits=0)
            with pytest.raises(KeyError):
                AggStore("no-such-combine")

        upcxx.run_spmd(body, 1)

    def test_add_combine_mass_conserved(self):
        def body():
            store = AggStore("+", batch_size=16)
            upcxx.barrier()
            rng = upcxx.runtime_here().rng.spawn("agg-mass")
            for _ in range(100):
                store.update(rng.key64() % 64, 1)
            store.quiesce()
            local = sum(store.local_items().values())
            total = upcxx.reduce_all(local, "+").wait()
            upcxx.barrier()
            return total

        res = upcxx.run_spmd(body, 4)
        assert all(t == 400 for t in res)

    def test_replace_min_max_combines(self):
        def body():
            me = upcxx.rank_me()
            lo = AggStore("min", batch_size=4)
            hi = AggStore("max", batch_size=4)
            last = AggStore("replace", batch_size=4)
            upcxx.barrier()
            lo.update(9, me + 1)
            hi.update(9, me + 1)
            # deterministic final writer: ranks write distinct keys
            last.update(me, me * 10)
            for s in (lo, hi, last):
                s.quiesce()
            out = (
                lo.read(9, default=None).wait(),
                hi.read(9, default=None).wait(),
                last.read(me, default=None).wait(),
            )
            upcxx.barrier()
            return out

        res = upcxx.run_spmd(body, 3)
        for r, (mn, mx, own) in enumerate(res):
            assert mn == 1
            assert mx == 3
            assert own == r * 10

    def test_callable_combine(self):
        def body():
            store = AggStore(lambda old, new: old * new, batch_size=2)
            upcxx.barrier()
            for v in (2, 3, 4):
                store.update(5, v)
            store.quiesce()
            v = store.read(5, default=None).wait()
            upcxx.barrier()
            return v

        res = upcxx.run_spmd(body, 2)
        assert res[0] == (2 * 3 * 4) ** 2  # both ranks multiply in

    def test_quiesce_flushes_partial_buffers(self):
        def body():
            store = AggStore("+", batch_size=10_000)  # never auto-flushes
            upcxx.barrier()
            store.update(1, 7)
            store.quiesce()
            v = store.read(1, default=0).wait()
            upcxx.barrier()
            return v

        res = upcxx.run_spmd(body, 2)
        assert res[0] == 14

    def test_stats_shape(self):
        def body():
            store = AggStore("+", batch_size=4, credits=4, cache_capacity=8)
            upcxx.barrier()
            store.update(3, 1)
            store.quiesce()
            store.read(3, default=0).wait()
            upcxx.barrier()
            return store.stats()

        res = upcxx.run_spmd(body, 2)
        expected_keys = {
            "batches_sent", "updates_sent", "invals_sent", "acks_received",
            "applied_updates", "applied_batches", "applied_invals",
            "credit_stalls", "credit_stall_s",
            "cache_hits", "cache_misses", "cache_invalidations",
            "acks_forgiven", "acks_ignored", "updates_dropped", "cache_purges",
        }
        for s in res:
            assert set(s) == expected_keys
        assert sum(s["applied_updates"] for s in res) == 2


def _sim_sleep(dt):
    """Park the calling rank for ``dt`` simulated seconds."""
    rt = upcxx.runtime_here()
    t_dead = rt.now() + dt
    rt.sched.post_at(t_dead, lambda: rt.sched.wake(rt.rank, t_dead))
    rt.wait_quiet(lambda: rt.now() >= t_dead, "test::sleep")


class TestDwellAndCredits:
    def test_max_dwell_flushes_via_poll(self):
        def body():
            store = AggStore("+", batch_size=10_000, max_dwell=2e-6)
            upcxx.barrier()
            me = upcxx.rank_me()
            if me == 0:
                store.update(11, 1)
                assert store.batches_sent == 0  # buffered, under batch size
                _sim_sleep(10e-6)
                store.poll()  # past the dwell deadline: must flush now
                assert store.batches_sent == 1
            store.quiesce()
            v = store.read(11, default=0).wait()
            upcxx.barrier()
            return v

        res = upcxx.run_spmd(body, 2)
        assert res[0] == 1

    def test_poll_respects_unexpired_dwell(self):
        def body():
            store = AggStore("+", batch_size=10_000, max_dwell=1.0)
            upcxx.barrier()
            store.update(11, 1)
            store.poll()  # deadline 1 simulated second away: no flush
            sent_before_quiesce = store.batches_sent
            store.quiesce()
            upcxx.barrier()
            return sent_before_quiesce

        res = upcxx.run_spmd(body, 2)
        assert all(s == 0 for s in res)

    def test_credit_exhaustion_stalls_and_recovers(self):
        stats = {}

        def body():
            store = AggStore("+", batch_size=1, credits=1)
            upcxx.barrier()
            # batch_size=1 + credits=1: every second consecutive update to
            # the same destination must wait for the previous batch's ack
            dest_key = 0 if store.dest_of(0) != upcxx.rank_me() else 1
            for _ in range(16):
                store.update(dest_key, 1)
            store.quiesce()
            upcxx.barrier()
            if upcxx.rank_me() == 0:
                stats.update(store.stats())
                stats["conduit"] = upcxx.runtime_here().conduit.stats()

        upcxx.run_spmd(body, 2, ppn=1)
        assert stats["credit_stalls"] > 0
        assert stats["credit_stall_s"] > 0.0
        assert stats["acks_received"] == stats["batches_sent"]
        # backpressure reaches the conduit's endpoint accounting too
        assert stats["conduit"]["agg_credit_stall_s"] > 0.0
        assert stats["conduit"]["agg_batches"] >= stats["batches_sent"]

    def test_no_credits_means_no_stalls(self):
        stats = {}

        def body():
            store = AggStore("+", batch_size=1)
            upcxx.barrier()
            for _ in range(16):
                store.update(upcxx.rank_me(), 1)
            store.quiesce()
            upcxx.barrier()
            if upcxx.rank_me() == 0:
                stats.update(store.stats())

        upcxx.run_spmd(body, 2, ppn=1)
        assert stats["credit_stalls"] == 0
        assert stats["acks_received"] == 0  # unacked fire-and-forget mode


class TestHotKeyCache:
    def test_hit_after_fill_and_invalidation_on_update(self):
        out = {}

        def body():
            me = upcxx.rank_me()
            store = AggStore("replace", batch_size=4, cache_capacity=8)
            # pick a key owned by rank 1 so rank 0's reads go remote
            key = next(k for k in range(64) if store.dest_of(k) == 1)
            upcxx.barrier()
            if me == 1:
                store.update(key, 111)
            store.quiesce()
            seq = []
            if me == 0:
                seq.append(store.read(key).wait())  # miss -> fill
                seq.append(store.read(key).wait())  # hit
            store.quiesce()
            upcxx.barrier()
            if me == 1:
                store.update(key, 222)  # owner update -> invalidate watchers
            store.quiesce()
            if me == 0:
                seq.append(store.read(key).wait())  # must re-fetch: 222
                out["seq"] = seq
                out.update(store.stats())
            upcxx.barrier()

        upcxx.run_spmd(body, 2)
        assert out["seq"] == [111, 111, 222]
        assert out["cache_hits"] == 1
        assert out["cache_misses"] == 2
        assert out["cache_invalidations"] >= 1

    def test_lru_eviction_bounds_cache(self):
        out = {}

        def body():
            me = upcxx.rank_me()
            store = AggStore("replace", batch_size=4, cache_capacity=2)
            upcxx.barrier()
            if me == 1:
                for k in range(8):
                    store.update(k, k)
            store.quiesce()
            if me == 0:
                for k in range(8):
                    store.read(k, default=-1).wait()
                # only 2 entries may survive; re-reading an evicted key misses
                store.read(0, default=-1).wait()
                out.update(store.stats())
            store.quiesce()
            upcxx.barrier()

        upcxx.run_spmd(body, 2)
        assert out["cache_hits"] == 0
        assert out["cache_misses"] == 9

    def test_uncached_store_has_zero_cache_traffic(self):
        out = {}

        def body():
            store = AggStore("replace", batch_size=4)
            upcxx.barrier()
            store.update(upcxx.rank_me(), 1)
            store.quiesce()
            store.read(0, default=0).wait()
            upcxx.barrier()
            if upcxx.rank_me() == 0:
                out.update(store.stats())

        upcxx.run_spmd(body, 2)
        assert out["cache_hits"] == out["cache_misses"] == 0
        assert out["cache_invalidations"] == 0
