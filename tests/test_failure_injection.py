"""Failure-injection tests: errors raised deep inside the stack must
surface cleanly (with rank attribution), never hang or corrupt the run,
plus the new MPI-3 accumulate operations.

``TestErrorPropagation`` runs on every scheduler backend: the error
verdict — exception type, failing-rank attribution, and the original
cause's type and message — must be identical whether the failing rank
lives in-process (coroutines/threads) or in a forked shard worker
(where the cause is reconstructed from a shipped descriptor)."""

import os
from contextlib import contextmanager

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.mpisim import Win, comm_world, run_mpi
from repro.sim.errors import DeadlockError, RankFailure


@contextmanager
def _backend_env(backend):
    """Yield run_spmd/run_mpi kwargs for ``backend`` (2 workers if sharded)."""
    from repro.sim.shard import SHARDS_ENV

    old = os.environ.get(SHARDS_ENV)
    if backend == "sharded":
        os.environ[SHARDS_ENV] = "2"
    try:
        yield {"backend": backend}
    finally:
        if old is None:
            os.environ.pop(SHARDS_ENV, None)
        else:
            os.environ[SHARDS_ENV] = old


@pytest.mark.parametrize("backend", ["coroutines", "threads", "sharded"])
class TestErrorPropagation:
    def test_exception_in_rpc_handler_surfaces(self, backend):
        def bad_handler():
            raise RuntimeError("handler exploded")

        def body():
            if upcxx.rank_me() == 0:
                upcxx.rpc(1, bad_handler).wait()
            upcxx.barrier()

        with _backend_env(backend) as kw:
            with pytest.raises(RankFailure) as ei:
                upcxx.run_spmd(body, 2, **kw)
        # the failure is attributed to the EXECUTING rank (the target)
        assert ei.value.rank == 1
        assert isinstance(ei.value.__cause__, RuntimeError)
        assert "handler exploded" in str(ei.value.__cause__)

    def test_exception_in_then_callback_surfaces(self, backend):
        def body():
            upcxx.make_future(1).then(lambda x: 1 / 0)

        with _backend_env(backend) as kw:
            with pytest.raises(RankFailure) as ei:
                upcxx.run_spmd(body, 2, **kw)
        assert isinstance(ei.value.__cause__, ZeroDivisionError)

    def test_exception_mid_collective_aborts_everyone(self, backend):
        def body():
            me = upcxx.rank_me()
            upcxx.barrier()
            if me == 2:
                raise ValueError("rank 2 dies")
            # others head into another barrier that can never complete;
            # the abort must unwind them rather than deadlock
            upcxx.barrier()

        with _backend_env(backend) as kw:
            with pytest.raises(RankFailure) as ei:
                upcxx.run_spmd(body, 4, **kw)
        assert ei.value.rank == 2
        assert isinstance(ei.value.__cause__, ValueError)
        assert "rank 2 dies" in str(ei.value.__cause__)

    def test_barrier_mismatch_is_detected_as_deadlock(self, backend):
        def body():
            if upcxx.rank_me() == 0:
                upcxx.barrier()  # nobody else joins
            # other ranks return immediately

        with _backend_env(backend) as kw:
            with pytest.raises(DeadlockError):
                upcxx.run_spmd(body, 3, **kw)

    def test_mpi_recv_without_send_deadlocks_cleanly(self, backend):
        def body():
            comm = comm_world()
            if comm.rank == 0:
                comm.recv(source=1, tag=1)  # never sent

        with _backend_env(backend) as kw:
            with pytest.raises(DeadlockError) as ei:
                run_mpi(body, 2, **kw)
        assert "MPI_Waitall" in str(ei.value)

    def test_segment_exhaustion_inside_rpc(self, backend):
        """An allocation failure inside an RPC handler propagates with the
        executing rank's id."""
        from repro.gasnet.segment import SegmentAllocationError

        def hog():
            upcxx.allocate(1 << 40)

        def body():
            if upcxx.rank_me() == 0:
                upcxx.rpc(1, hog).wait()
            upcxx.barrier()

        with _backend_env(backend) as kw:
            with pytest.raises(RankFailure) as ei:
                upcxx.run_spmd(body, 2, **kw)
        assert ei.value.rank == 1
        assert isinstance(ei.value.__cause__, SegmentAllocationError)


class TestMpiAccumulate:
    def test_accumulate_sums_elementwise(self):
        def body():
            comm = comm_world()
            win = Win.allocate(comm, 8 * 8)
            win.local_view(np.float64)[:] = 1.0
            comm.barrier()
            if comm.rank == 0:
                win.lock(1)
                win.accumulate(np.arange(8.0), target=1, op="+")
                win.accumulate(np.arange(8.0), target=1, op="+")
                win.unlock(1)
            comm.barrier()
            return win.local_view(np.float64).copy()

        res = run_mpi(body, 2)
        assert np.allclose(res[1], 1.0 + 2 * np.arange(8.0))

    def test_accumulate_max(self):
        def body():
            comm = comm_world()
            win = Win.allocate(comm, 8 * 4)
            win.local_view(np.float64)[:] = 5.0
            comm.barrier()
            if comm.rank == 0:
                win.lock(1)
                win.accumulate(np.array([1.0, 9.0, 5.0, 7.0]), target=1, op="max")
                win.unlock(1)
            comm.barrier()
            return win.local_view(np.float64).copy()

        res = run_mpi(body, 2)
        assert np.allclose(res[1], [5.0, 9.0, 5.0, 7.0])

    def test_accumulate_from_many_ranks_no_lost_updates(self):
        """Concurrent accumulates are applied atomically elementwise."""

        def body():
            comm = comm_world()
            win = Win.allocate(comm, 8)
            win.local_view(np.int64)[:] = 0
            comm.barrier()
            win.lock(0)
            for _ in range(5):
                win.accumulate(np.array([1]), target=0, op="+", dtype=np.int64)
            win.unlock(0)
            comm.barrier()
            return int(win.local_view(np.int64)[0])

        res = run_mpi(body, 4)
        assert res[0] == 20

    def test_fetch_and_op_tickets(self):
        def body():
            comm = comm_world()
            win = Win.allocate(comm, 8)
            win.local_view(np.int64)[:] = 0
            comm.barrier()
            win.lock(0)
            r = win.fetch_and_op(1, target=0, op="fetch_add", dtype=np.int64)
            win.flush(0)
            win.unlock(0)
            ticket = int(r.as_array(np.int64)[0])
            comm.barrier()
            total = comm.allreduce(1, "+")
            tickets = comm.allgather(ticket)
            comm.barrier()
            return (sorted(tickets), total)

        res = run_mpi(body, 4)
        assert res[0][0] == [0, 1, 2, 3]  # unique, gap-free tickets

    def test_unsupported_op_rejected(self):
        def body():
            comm = comm_world()
            win = Win.allocate(comm, 8)
            comm.barrier()
            with pytest.raises(ValueError):
                win.accumulate(np.array([1.0]), target=0, op="xor")
            comm.barrier()

        run_mpi(body, 2)
