"""Unit tests for the util layer: units, stats, benchmark records, trace."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.records import BenchSeries, BenchTable, format_table, series_from_mapping
from repro.util.stats import Summary, geomean, speedup, summarize
from repro.util.trace import TraceBuffer
from repro.util.units import (
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    parse_size,
)


class TestUnits:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, "0B"), (8, "8B"), (1023, "1023B"), (1024, "1KiB"), (8192, "8KiB"),
         (MiB, "1MiB"), (4 * MiB, "4MiB"), (GiB, "1GiB"), (1536, "1.50KiB")],
    )
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected

    def test_fmt_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            fmt_bytes(-1)

    @pytest.mark.parametrize(
        "text,expected",
        [("8", 8), ("8K", 8 * KiB), ("4MiB", 4 * MiB), ("1 gb", GiB), ("512b", 512)],
    )
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    def test_parse_size_invalid(self):
        for bad in ["", "K", "8Q", "abc"]:
            with pytest.raises(ValueError):
                parse_size(bad)

    def test_parse_fmt_roundtrip(self):
        for n in [8, 1024, 8192, MiB, 4 * MiB]:
            assert parse_size(fmt_bytes(n)) == n

    @pytest.mark.parametrize(
        "t,frag",
        [(0, "0s"), (5e-9, "ns"), (1.5e-6, "us"), (2.5e-3, "ms"), (3.0, "s")],
    )
    def test_fmt_time(self, t, frag):
        assert frag in fmt_time(t)

    def test_fmt_time_negative(self):
        assert fmt_time(-1e-6).startswith("-")

    def test_fmt_rate(self):
        assert fmt_rate(2 * GiB) == "2.00GiB/s"
        assert "MiB/s" in fmt_rate(5 * MiB)
        assert "B/s" in fmt_rate(10)


class TestStats:
    def test_summarize_basic(self):
        s = summarize([3.0, 1.0, 2.0])
        assert s == Summary(
            n=3, mean=2.0, minimum=1.0, maximum=3.0, median=2.0, stdev=1.0,
            p50=2.0, p95=2.9, p99=2.98, p999=2.998,
        )
        assert s.best == 1.0

    def test_summarize_percentiles_interpolate(self):
        # order statistics of [1..5]: p50 is the middle sample, p95/p99
        # interpolate linearly between the last two samples
        s = summarize([5.0, 1.0, 4.0, 2.0, 3.0])
        assert s.p50 == 3.0
        assert s.p95 == pytest.approx(4.8)
        assert s.p99 == pytest.approx(4.96)
        assert s.p999 == pytest.approx(4.996)
        one = summarize([7.0])
        assert one.p50 == one.p95 == one.p99 == one.p999 == 7.0

    def test_summarize_even_median(self):
        assert summarize([1, 2, 3, 4]).median == 2.5

    def test_summarize_single(self):
        s = summarize([5.0])
        assert s.stdev == 0.0 and s.mean == 5.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_summarize_rejects_non_finite(self, bad):
        # a NaN compares false against everything, silently corrupting
        # min/median/best — reject loudly instead
        with pytest.raises(ValueError, match="finite"):
            summarize([1.0, bad, 2.0])

    def test_geomean_rejects_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            geomean([1.0, float("nan")])

    def test_summarize_mean_clamped_to_bounds(self):
        # three identical samples whose naive sum()/n exceeds max by one ulp
        v = 349525.49512621143
        s = summarize([v, v, v])
        assert s.minimum <= s.mean <= s.maximum

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geomean([1, 0])
        with pytest.raises(ValueError):
            geomean([])

    def test_speedup(self):
        assert speedup(10.0, 5.0) == 2.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=50))
    def test_summary_bounds_property(self, xs):
        s = summarize(xs)
        assert s.minimum <= s.median <= s.maximum
        assert s.minimum <= s.mean <= s.maximum


class TestRecords:
    def test_series_add_and_lookup(self):
        s = BenchSeries("lat")
        s.add(8, 1.5)
        s.add(16, 2.5)
        assert s.y_at(16) == 2.5
        with pytest.raises(KeyError):
            s.y_at(99)
        assert s.as_dict() == {"label": "lat", "x": [8, 16], "y": [1.5, 2.5]}

    def test_table_ratio(self):
        t = BenchTable("T", "x", "y")
        a = t.new_series("a")
        b = t.new_series("b")
        a.add(1, 10.0)
        b.add(1, 5.0)
        assert t.ratio("a", "b", 1) == 2.0
        with pytest.raises(KeyError):
            t.get("missing")

    def test_format_table_aligns_and_fills_gaps(self):
        t = BenchTable("Demo", "size", "us")
        a = t.new_series("one")
        b = t.new_series("two")
        a.add(8, 1.0)
        a.add(16, 2.0)
        b.add(8, 3.0)
        text = format_table(t, y_fmt=lambda y: f"{y:.1f}")
        lines = text.splitlines()
        assert "Demo" in lines[0]
        assert "-" in text.splitlines()[-1]  # the missing b@16 renders as '-'
        # all rows align to the same width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_series_from_mapping_sorted(self):
        s = series_from_mapping("m", {3: 30, 1: 10, 2: 20})
        assert s.xs == [1, 2, 3]
        assert s.ys == [10, 20, 30]


class TestTrace:
    def test_capacity_bounds(self):
        tb = TraceBuffer(capacity=3)
        for i in range(10):
            tb.record(float(i), 0, "k", str(i))
        assert len(tb) == 3
        assert [e.detail for e in tb] == ["7", "8", "9"]

    def test_disabled_records_nothing(self):
        tb = TraceBuffer(enabled=False)
        tb.record(1.0, 0, "k")
        assert len(tb) == 0

    def test_fingerprint_order_sensitive(self):
        t1, t2 = TraceBuffer(), TraceBuffer()
        t1.record(1.0, 0, "a")
        t1.record(2.0, 0, "b")
        t2.record(2.0, 0, "b")
        t2.record(1.0, 0, "a")
        assert t1.fingerprint() != t2.fingerprint()

    def test_dump_limit(self):
        tb = TraceBuffer()
        for i in range(5):
            tb.record(float(i), i, "k", f"e{i}")
        assert tb.dump(limit=2).count("\n") == 1
        tb.clear()
        assert len(tb) == 0
