"""Telemetry rollups, the flight recorder, and the health-gate CLI.

Covers the observability tentpole's three acceptance properties:

- windowed rollups are **bit-identical** across the coroutine, thread,
  and sharded backends (the same bar simulated results are held to);
- a rank crash produces a **blackbox** post-mortem bundle that is
  byte-identical across all three backends — including when the dead
  rank lives in a forked shard worker — frozen at the crash cutoff;
- ``repro.tools.health`` flags an above-knee (saturated) KV run and
  passes a below-knee one.
"""

import json
import os

import pytest

import repro.upcxx as upcxx
from repro.sim.errors import RankDeadError
from repro.tools import health
from repro.util.telemetry import BLACKBOX_SCHEMA, Telemetry, dumps_blackbox

N_RANKS = 4
CRASH_SPEC = "seed=3,crash=1@3e-4"


def _ring_body():
    me, n = upcxx.rank_me(), upcxx.rank_n()
    acc = 0
    # long enough that the CRASH_SPEC crash at t=3e-4 lands mid-work, so
    # the dying rank itself reaches the crash check and records its death
    for i in range(200):
        acc += upcxx.rpc((me + 1) % n, lambda x: x + 1, i).wait()
    upcxx.barrier()
    return acc


def _run(backend, shards=None, faults=None, tel=None):
    prev = os.environ.get("REPRO_SIM_SHARDS")
    if shards is not None:
        os.environ["REPRO_SIM_SHARDS"] = str(shards)
    try:
        return upcxx.run_spmd(_ring_body, N_RANKS, ppn=2, seed=5,
                              backend=backend, faults=faults, telemetry=tel)
    finally:
        if shards is not None:
            if prev is None:
                os.environ.pop("REPRO_SIM_SHARDS", None)
            else:
                os.environ["REPRO_SIM_SHARDS"] = prev


BACKENDS = (("coroutines", None), ("threads", None), ("sharded", 2))


# ------------------------------------------------------------------- rollups
def test_rollups_bit_identical_across_backends():
    dumps = {}
    for backend, shards in BACKENDS:
        tel = Telemetry()
        res = _run(backend, shards, tel=tel)
        assert len(res) == N_RANKS
        dumps[backend] = tel.dumps()
    assert dumps["coroutines"] == dumps["threads"] == dumps["sharded"]


def test_window_structure_and_monotonicity():
    tel = Telemetry()
    _run("coroutines", tel=tel)
    assert sorted(tel.ranks) == list(range(N_RANKS))
    for rank, rt in tel.ranks.items():
        wins = rt.windows
        assert wins, f"rank {rank} closed no windows"
        # cumulative counters never decrease; window times strictly grow
        for a, b in zip(wins, wins[1:]):
            assert b["t"] > a["t"]
            assert b["executed"] >= a["executed"]
            assert b["ams"] >= a["ams"]
            assert sum(b["ops"].values()) >= sum(a["ops"].values())
        last = wins[-1]
        assert last["final"] is True
        assert last["executed"] > 0
        assert set(last["nic"]) == {"puts", "gets", "ams", "amos",
                                    "bytes_out", "backlog_s"}
        assert set(last["rel"]) == {"retx", "dropped", "dup", "acks"}
        assert set(last["agg"]) == {"batches", "updates", "credit_stall_s",
                                    "cache_hits"}
        assert last["max_gap_s"] >= 0.0
        # the flight recorder rode along
        assert len(rt.ring) > 0


def test_rollups_respect_window_cadence():
    tel = Telemetry(window_s=5e-6)
    _run("coroutines", tel=tel)
    wide = Telemetry(window_s=1e-3)
    _run("coroutines", tel=wide)
    n_narrow = sum(len(rt.windows) for rt in tel.ranks.values())
    n_wide = sum(len(rt.windows) for rt in wide.ranks.values())
    assert n_narrow > n_wide  # finer cadence -> more windows


# ------------------------------------------------------------------ blackbox
def _crash_run(backend, shards=None, path=None):
    tel = Telemetry(blackbox_path=path)
    with pytest.raises(RankDeadError):
        _run(backend, shards, faults=CRASH_SPEC, tel=tel)
    assert tel.blackbox is not None
    return tel


def test_blackbox_bit_identical_across_backends():
    bundles = {b: dumps_blackbox(_crash_run(b, s).blackbox)
               for b, s in BACKENDS}
    assert bundles["coroutines"] == bundles["threads"] == bundles["sharded"]


def test_blackbox_contents():
    bb = _crash_run("coroutines").blackbox
    assert bb["schema"] == BLACKBOX_SCHEMA
    assert bb["verdict"]["type"] == "RankDeadError"
    assert bb["verdict"]["rank"] == 1
    assert bb["cutoff_s"] == pytest.approx(3e-4)
    ranks = bb["ranks"]
    assert sorted(ranks) == [str(r) for r in range(N_RANKS)]
    dead = ranks["1"]
    assert dead["dead"] is True
    assert dead["died_at"] == pytest.approx(3e-4)
    # every ring entry respects the freeze cutoff
    for rec in ranks.values():
        for t, _kind, _detail in rec["tail"]:
            assert t <= bb["cutoff_s"] + 1e-12
    # the dead rank's last ring entry is its own death
    assert dead["tail"][-1][1] == "crash"
    survivors = [r for r, rec in ranks.items() if not rec["dead"]]
    assert sorted(survivors) == ["0", "2", "3"]
    for r in survivors:
        assert ranks[r]["tail"], f"survivor {r} shipped no tail"


def test_blackbox_written_to_path(tmp_path):
    path = tmp_path / "blackbox.json"
    tel = _crash_run("coroutines", path=str(path))
    on_disk = path.read_text()
    assert on_disk.rstrip("\n") == dumps_blackbox(tel.blackbox)
    parsed = json.loads(on_disk)
    assert parsed["verdict"]["rank"] == 1


def test_blackbox_through_shard_fail_frames(tmp_path):
    """The dead rank lives in a forked worker: its frozen telemetry must
    cross the FAIL frame and land in the parent's bundle."""
    path = tmp_path / "bb.json"
    tel = _crash_run("sharded", shards=2, path=str(path))
    bb = tel.blackbox
    assert bb["ranks"]["1"]["dead"] is True
    assert bb["ranks"]["1"]["tail"]
    assert path.exists()


# -------------------------------------------------------------------- health
def test_health_passes_below_knee_fails_above_knee():
    from repro.bench.kv_bench import measure_point

    below = measure_point("tiny", 1.0)
    above = measure_point("tiny", 8.0)
    v_below = health.evaluate({"kv": below})
    v_above = health.evaluate({"kv": above})
    assert all(v.status != "FAIL" for v in v_below), [v.line() for v in v_below]
    assert any(v.status == "FAIL" and v.name == "kv-utilization"
               for v in v_above), [v.line() for v in v_above]


def test_health_cli_exit_codes(tmp_path):
    from repro.bench.kv_bench import measure_point

    ok = tmp_path / "ok.json"
    bad = tmp_path / "bad.json"
    ok.write_text(json.dumps(measure_point("tiny", 1.0)))
    bad.write_text(json.dumps(measure_point("tiny", 8.0)))
    assert health.main(["--kv", str(ok)]) == 0
    assert health.main(["--kv", str(bad)]) == 1


def test_health_telemetry_rules():
    tel = Telemetry()
    _run("coroutines", tel=tel)
    verdicts = health.evaluate({"telemetry": json.loads(tel.dumps())})
    names = {v.name for v in verdicts}
    assert {"attentiveness-gap", "retransmit-rate",
            "credit-stall-fraction"} <= names
    assert all(v.status == "PASS" for v in verdicts), \
        [v.line() for v in verdicts]
    # an absurdly tight gap bound must flip the attentiveness rule
    strict = health.evaluate({"telemetry": json.loads(tel.dumps())},
                             max_gap_s=1e-12)
    gap = next(v for v in strict if v.name == "attentiveness-gap")
    assert gap.status == "WARN"


def test_health_declarative_rules():
    doc = {"kv": {"utilization": 0.97, "p99_s": 4.2e-5}}
    rule_ok = {"name": "util-floor", "doc": "kv", "path": "utilization",
               "op": ">=", "value": 0.9}
    rule_bad = {"name": "p99-ceiling", "doc": "kv", "path": "p99_s",
                "op": "<=", "value": 1e-5}
    ok, bad = health.evaluate(doc, rules=[rule_ok, rule_bad])[-2:]
    assert ok.status == "PASS"
    assert bad.status == "FAIL"


def test_health_advisory_gates_never_fail_strict(tmp_path, capsys):
    bench = {
        "gates": [
            {"name": "coroutines_vs_threads", "target_speedup": 1.4,
             "measured_speedup": 1.1, "passed": False, "advisory": True},
            {"name": "kv_aggregation_vs_rpc", "target_speedup": 4.0,
             "measured_speedup": 6.5, "passed": True},
        ],
    }
    p = tmp_path / "bench.json"
    p.write_text(json.dumps(bench))
    assert health.main(["--bench", str(p), "--strict"]) == 0
    out = capsys.readouterr().out
    assert "[INFO]" in out


# ------------------------------------------------------------- perf digest
def test_perf_harness_telemetry_digest():
    from repro.bench.perf_harness import telemetry_digest

    d = telemetry_digest(("coroutines", "threads"))
    assert d["identical"] is True
    assert d["n_ranks"] == 8
    assert d["totals"]["ops"] > 0
    assert d["totals"]["windows"] > 0
    assert len(d["fingerprint"]) == 16
