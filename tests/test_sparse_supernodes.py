"""Tests for general-matrix supernodal symbolic analysis and the solver
running on non-grid SPD inputs."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

import repro.upcxx as upcxx
from repro.apps.sparse.elimtree import elimination_tree
from repro.apps.sparse.matrices import laplacian_3d, random_spd
from repro.apps.sparse.numeric import factor_and_solve
from repro.apps.sparse.ordering import nested_dissection_3d
from repro.apps.sparse.supernodes import (
    amalgamate,
    build_cholesky_plan_general,
    column_structures,
    fundamental_supernodes,
    symbolic_general,
)
from repro.apps.sparse.symbolic import check_symbolic_invariants


class TestColumnStructures:
    def test_matches_dense_cholesky_fill(self):
        a = random_spd(40, density=0.08, seed=1)
        parent = elimination_tree(a)
        struct = column_structures(a, parent)
        ell = np.linalg.cholesky(a.toarray())
        for j in range(40):
            fill = {int(i) for i in np.flatnonzero(np.abs(ell[:, j]) > 1e-12) if i > j}
            # symbolic structure must cover the numeric fill
            assert fill <= struct[j]

    def test_tridiagonal_structures(self):
        n = 8
        a = sp.diags([np.ones(n - 1), 4 * np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        parent = elimination_tree(a)
        struct = column_structures(sp.csc_matrix(a), parent)
        for j in range(n - 1):
            assert struct[j] == {j + 1}
        assert struct[n - 1] == set()


class TestSupernodes:
    def test_partition_covers_all_columns(self):
        a = random_spd(60, density=0.05, seed=2)
        parent = elimination_tree(a)
        struct = column_structures(a, parent)
        sns = fundamental_supernodes(parent, struct)
        cols = sorted(c for s in sns for c in s)
        assert cols == list(range(60))

    def test_dense_matrix_collapses_to_one_supernode(self):
        """A dense SPD matrix's factor is fully dense: one supernode."""
        n = 10
        a = sp.csc_matrix(random_spd(n, density=1.0, seed=5).toarray())
        parent = elimination_tree(a)
        struct = column_structures(a, parent)
        sns = fundamental_supernodes(parent, struct)
        assert len(sns) == 1 and len(sns[0]) == n

    def test_tridiagonal_gives_bidiagonal_singletons(self):
        """A tridiagonal factor is bidiagonal: struct(j) = {j+1} differs
        column to column, so only the final pair merges."""
        n = 10
        a = sp.diags([np.ones(n - 1), 4 * np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        parent = elimination_tree(a)
        struct = column_structures(sp.csc_matrix(a), parent)
        sns = fundamental_supernodes(parent, struct)
        assert len(sns) == n - 1
        assert sorted(map(len, sns)) == [1] * (n - 2) + [2]

    def test_diagonal_matrix_gives_singleton_supernodes(self):
        a = sp.identity(6, format="csc") * 3.0
        parent = elimination_tree(a)
        struct = column_structures(a, parent)
        sns = fundamental_supernodes(parent, struct)
        assert len(sns) == 6

    def test_amalgamation_reduces_front_count(self):
        a = random_spd(80, density=0.03, seed=3)
        f0, _ = symbolic_general(a, max_extra_fill=0)
        f1, _ = symbolic_general(a, max_extra_fill=200)
        assert len(f1) <= len(f0)
        check_symbolic_invariants(f1)

    def test_fronts_satisfy_invariants(self):
        a = random_spd(70, density=0.06, seed=4)
        fronts, _ = symbolic_general(a)
        check_symbolic_invariants(fronts)
        # postorder ids: children strictly smaller than parents
        for nid, f in fronts.items():
            for c in f.children:
                assert c < nid

    def test_with_nd_permutation_on_grid(self):
        """The generic path under an ND permutation must produce valid
        fronts for a grid too."""
        a = laplacian_3d(4, 4, 2)
        _root, perm = nested_dissection_3d(4, 4, 2, leaf_size=8)
        fronts, elim_pos = symbolic_general(a, perm=perm)
        check_symbolic_invariants(fronts)
        assert sorted(int(elim_pos[v]) for v in range(32)) == list(range(32))


class TestGeneralSolver:
    @pytest.mark.parametrize("n_procs", [1, 2, 4])
    def test_random_spd_solved_exactly(self, n_procs):
        a = random_spd(50, density=0.06, seed=7)
        plan = build_cholesky_plan_general(a, n_procs=n_procs)
        rng = np.random.default_rng(9)
        b = rng.standard_normal(50)
        res = upcxx.run_spmd(lambda: factor_and_solve(plan, b), n_procs, max_time=1e7)
        ref = spla.spsolve(sp.csc_matrix(a), b)
        assert np.allclose(res[0], ref, atol=1e-8)

    def test_grid_matrix_through_generic_path(self):
        """Same answer whether the fronts come from geometry or supernodes."""
        a = laplacian_3d(4, 3, 2)
        _root, perm = nested_dissection_3d(4, 3, 2, leaf_size=6)
        plan = build_cholesky_plan_general(a, n_procs=2, perm=perm)
        b = np.linspace(1, 2, 24)
        res = upcxx.run_spmd(lambda: factor_and_solve(plan, b), 2, max_time=1e7)
        ref = spla.spsolve(sp.csc_matrix(a), b)
        assert np.allclose(res[0], ref, atol=1e-9)

    def test_amalgamated_plan_still_exact(self):
        a = random_spd(60, density=0.05, seed=12)
        plan = build_cholesky_plan_general(a, n_procs=4, max_extra_fill=300)
        b = np.ones(60)
        res = upcxx.run_spmd(lambda: factor_and_solve(plan, b), 4, max_time=1e7)
        ref = spla.spsolve(sp.csc_matrix(a), b)
        assert np.allclose(res[0], ref, atol=1e-8)

    def test_rcm_permutation(self):
        """Any consistent permutation works (here: reverse Cuthill-McKee)."""
        from scipy.sparse.csgraph import reverse_cuthill_mckee

        a = random_spd(45, density=0.08, seed=20)
        perm = np.asarray(reverse_cuthill_mckee(sp.csr_matrix(a)))
        plan = build_cholesky_plan_general(a, n_procs=2, perm=perm)
        b = np.arange(45, dtype=float)
        res = upcxx.run_spmd(lambda: factor_and_solve(plan, b), 2, max_time=1e7)
        ref = spla.spsolve(sp.csc_matrix(a), b)
        assert np.allclose(res[0], ref, atol=1e-8)
