"""Tests for machine topology and network/CPU models."""

import pytest
from hypothesis import given, strategies as st

from repro.gasnet.machine import Machine
from repro.gasnet.network import AriesNetwork, PATH_BTE, PATH_FMA
from repro.gasnet.cpumodel import HASWELL, KNL, platform_cpu


class TestMachine:
    def test_basic_layout(self):
        m = Machine(n_nodes=4, procs_per_node=32)
        assert m.n_ranks == 128
        assert m.node_of(0) == 0
        assert m.node_of(31) == 0
        assert m.node_of(32) == 1
        assert m.node_of(127) == 3

    def test_same_node(self):
        m = Machine(n_nodes=2, procs_per_node=4)
        assert m.same_node(0, 3)
        assert not m.same_node(3, 4)

    def test_ranks_on_node(self):
        m = Machine(n_nodes=3, procs_per_node=2)
        assert list(m.ranks_on_node(1)) == [2, 3]

    def test_for_ranks_rounds_up(self):
        m = Machine.for_ranks(33, procs_per_node=32)
        assert m.n_nodes == 2
        assert m.n_ranks == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            Machine(n_nodes=0, procs_per_node=1)
        with pytest.raises(ValueError):
            Machine(n_nodes=1, procs_per_node=0)
        m = Machine(n_nodes=1, procs_per_node=4)
        with pytest.raises(ValueError):
            m.node_of(4)
        with pytest.raises(ValueError):
            m.ranks_on_node(1)

    @given(st.integers(1, 10_000), st.integers(1, 68))
    def test_every_rank_has_exactly_one_node(self, n_ranks, ppn):
        m = Machine.for_ranks(n_ranks, ppn)
        # block placement: node ids nondecreasing, each node <= ppn ranks
        nodes = [m.node_of(r) for r in range(n_ranks)]
        assert nodes == sorted(nodes)
        for node in set(nodes):
            assert nodes.count(node) <= ppn


class TestNetwork:
    def test_latency_paths(self):
        net = AriesNetwork()
        assert net.latency(same_node=True) < net.latency(same_node=False)

    def test_occupancy_monotone_in_size(self):
        net = AriesNetwork()
        prev = 0.0
        for n in [0, 64, 1024, 65536]:
            occ = net.occupancy(n, PATH_FMA, same_node=False)
            assert occ > prev
            prev = occ

    def test_bte_beats_fma_for_large(self):
        net = AriesNetwork()
        big = 1 << 20
        assert net.occupancy(big, PATH_BTE, False) < net.occupancy(big, PATH_FMA, False)

    def test_fma_beats_bte_for_small(self):
        net = AriesNetwork()
        assert net.occupancy(8, PATH_FMA, False) < net.occupancy(8, PATH_BTE, False)

    def test_best_path_threshold(self):
        net = AriesNetwork()
        assert net.best_path(100, threshold=4096) == PATH_FMA
        assert net.best_path(4096, threshold=4096) == PATH_BTE

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            AriesNetwork().occupancy(-1, PATH_FMA, False)

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError):
            AriesNetwork().occupancy(8, "smoke-signals", False)


class TestCpuModel:
    def test_knl_slower_serial(self):
        assert KNL.serial_factor > HASWELL.serial_factor
        assert KNL.t(1e-6) > HASWELL.t(1e-6)

    def test_copy_time_linear(self):
        assert HASWELL.copy_time(2048) == pytest.approx(2 * HASWELL.copy_time(1024))

    def test_platform_lookup(self):
        assert platform_cpu("haswell") is HASWELL
        assert platform_cpu("KNL") is KNL
        with pytest.raises(ValueError):
            platform_cpu("epyc")

    def test_accumulate_time(self):
        assert HASWELL.accumulate_time(0) == 0.0
        assert HASWELL.accumulate_time(1000) > 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HASWELL.copy_time(-1)
        with pytest.raises(ValueError):
            HASWELL.accumulate_time(-5)
