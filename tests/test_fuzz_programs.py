"""Property-based fuzzing: random SPMD programs checked against an oracle.

Hypothesis generates random sequences of communication operations (puts,
gets, RPC increments, atomics) with deterministic targets; the final
global memory state is computed two ways — through the full simulated
stack, and by a trivial sequential oracle — and must match exactly.
Because each rank's operations target disjoint slots, the outcome is
order-independent and the oracle is exact.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.upcxx as upcxx

N_RANKS = 4
SLOTS = 8  # slots per rank

# one operation: (kind, src_rank, dst_rank, slot, value)
_op = st.tuples(
    st.sampled_from(["put", "rpc_add", "atomic_add", "put_then_get"]),
    st.integers(0, N_RANKS - 1),  # src
    st.integers(0, N_RANKS - 1),  # dst
    st.integers(0, SLOTS - 1),  # slot
    st.integers(1, 100),  # value
)


def _slot_owner_key(src: int, slot: int, cls: int = 0) -> int:
    """Each (src, slot, op-class) triple writes a distinct destination
    slot, so operations never race: puts use even cells, atomics odd ones
    (their completion orders are independent in the real library too)."""
    return (2 * (src * SLOTS + slot) + cls) % (2 * SLOTS * N_RANKS)


def _oracle(ops) -> np.ndarray:
    """Sequential model of the final memory: mem[rank, slot].

    Mirrors the simulated program's layout: puts land in RMA memory,
    RPC adds in a separate shard, atomics in the RMA memory — the final
    observable is their sum (puts overwrite only the put space).
    """
    puts = np.zeros((N_RANKS, 2 * SLOTS * N_RANKS), dtype=np.int64)
    adds = np.zeros((N_RANKS, 2 * SLOTS * N_RANKS), dtype=np.int64)
    for kind, src, dst, slot, value in ops:
        if kind == "put" or kind == "put_then_get":
            puts[dst, _slot_owner_key(src, slot, 0)] = value  # last put wins
        elif kind == "atomic_add":
            puts[dst, _slot_owner_key(src, slot, 1)] += value
        elif kind == "rpc_add":
            adds[dst, _slot_owner_key(src, slot, 0)] += value
    return puts + adds


def _rpc_add(dobj, key, value):
    dobj.value[key] += value


def _run_simulated(ops, faults=None) -> np.ndarray:
    result = np.zeros((N_RANKS, 2 * SLOTS * N_RANKS), dtype=np.int64)

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        g = upcxx.new_array(np.int64, 2 * SLOTS * N_RANKS)
        g.local()[:] = 0
        adds = upcxx.DistObject(np.zeros(2 * SLOTS * N_RANKS, dtype=np.int64))
        ptrs = [upcxx.broadcast(g, root=r).wait() for r in range(n)]
        ad = upcxx.AtomicDomain(["add"], np.int64)
        upcxx.barrier()

        # puts from the same (src, slot) must apply in program order, so
        # chain them; independent slots pipeline freely
        last_put: dict = {}
        pending = []
        for kind, src, dst, slot, value in ops:
            if src != me:
                continue
            if kind in ("put", "put_then_get"):
                key = _slot_owner_key(src, slot, 0)
                dest_ptr = ptrs[dst][key]
                prev = last_put.get((dst, key))
                if prev is None:
                    f = upcxx.rput(value, dest_ptr)
                else:
                    f = prev.then(lambda v=value, p=dest_ptr: upcxx.rput(v, p))
                last_put[(dst, key)] = f
                pending.append(f)
                if kind == "put_then_get":
                    pending.append(f.then(lambda p=dest_ptr: upcxx.rget(p)))
            elif kind == "rpc_add":
                key = _slot_owner_key(src, slot, 0)
                pending.append(upcxx.rpc(dst, _rpc_add, adds, key, value))
            elif kind == "atomic_add":
                key = _slot_owner_key(src, slot, 1)
                pending.append(ad.add(ptrs[dst][key], value))
        if pending:
            upcxx.when_all(*pending).wait()
        upcxx.barrier()  # everyone's one-sided ops are globally complete
        # merge the RPC-side adds into the RMA memory for comparison
        combined = g.local() + adds.value
        result[me, :] = combined
        upcxx.barrier()

    upcxx.run_spmd(body, N_RANKS, faults=faults)
    return result


@settings(max_examples=12, deadline=None)
@given(st.lists(_op, min_size=1, max_size=25))
def test_random_programs_match_oracle(ops):
    assert np.array_equal(_run_simulated(ops), _oracle(ops))


#: seeded fault plans for the chaos fuzz dimension: lossy/jittery links
#: (where the reliability layer must still deliver exactly-once and the
#: oracle must match), plus whole-rank crashes (where the run must end
#: with a typed verdict, never a hang)
_FAULT_SPECS = [
    "seed=11,drop=0.15,dup=0.1",
    "seed=12,jitter=1e-6,dup=0.2",
    "seed=13,drop=0.3,jitter=5e-7,stall=20000:2e-6",
    "seed=14,crash=1@5e-5",
    "seed=15,drop=0.2,crash=3@2e-4",
]


@settings(max_examples=12, deadline=None)
@given(st.lists(_op, min_size=1, max_size=25), st.sampled_from(_FAULT_SPECS))
def test_random_programs_under_faults(ops, spec):
    """Chaos dimension: every program either completes with the exact
    oracle answer (reliable delivery is exactly-once despite drops,
    duplicates, jitter, and NIC stalls) or raises a *typed* error when a
    rank crashes — it must never hang or return corrupted memory."""
    from repro.sim.errors import DeadlockError, RankDeadError, RankFailure

    try:
        got = _run_simulated(ops, faults=spec)
    except (RankFailure, RankDeadError, DeadlockError):
        assert "crash" in spec  # only rank death may abort the run
        return
    assert np.array_equal(got, _oracle(ops))


def test_oracle_helper_sanity():
    ops = [("put", 0, 1, 0, 5), ("rpc_add", 2, 1, 0, 3), ("atomic_add", 0, 1, 0, 2)]
    mem = _oracle(ops)
    assert mem[1, _slot_owner_key(0, 0, 0)] == 5  # the put
    assert mem[1, _slot_owner_key(0, 0, 1)] == 2  # the atomic
    assert mem[1, _slot_owner_key(2, 0, 0)] == 3  # the rpc add


# ======================================================================
# Aggregator dimension: random AggStore op sequences vs a sum oracle
# ======================================================================
N_AGG_KEYS = 32

# one aggregated op: (src_rank, key, delta)
_agg_op = st.tuples(
    st.integers(0, N_RANKS - 1),
    st.integers(0, N_AGG_KEYS - 1),
    st.integers(1, 50),
)


def _agg_oracle(ops) -> dict:
    """Sequential model: '+'-combine is order-independent, so the final
    store is exactly the per-key sum of every rank's deltas."""
    out: dict = {}
    for _src, key, delta in ops:
        out[key] = out.get(key, 0) + delta
    return out


def _run_agg_simulated(ops, batch_size, faults=None):
    """Push the op sequence through AggStore; read back the full keyspace.

    Interleaves poll() (the dwell pacing hook) and mid-stream flushes so
    random programs exercise partial-batch, full-batch, and quiesce-swept
    paths; reads go through a hot-key cache on every rank.
    """
    from repro.upcxx.aggregator import AggStore

    def body():
        me = upcxx.rank_me()
        store = AggStore("+", batch_size=batch_size, credits=2,
                         max_dwell=5e-6, cache_capacity=8)
        upcxx.barrier()
        for i, (src, key, delta) in enumerate(ops):
            if src != me:
                continue
            store.update(key, delta)
            if i % 7 == 3:
                store.poll()
            if i % 11 == 5:
                store.flush()
        store.quiesce()
        vals = tuple(store.read(k, default=0).wait() for k in range(N_AGG_KEYS))
        store.quiesce()  # settle read-triggered invalidation watchers
        upcxx.barrier()
        return vals

    return upcxx.run_spmd(body, N_RANKS, faults=faults)


@settings(max_examples=12, deadline=None)
@given(st.lists(_agg_op, min_size=1, max_size=40),
       st.sampled_from([1, 3, 8, 64]))
def test_random_agg_programs_match_oracle(ops, batch_size):
    expected = _agg_oracle(ops)
    want = tuple(expected.get(k, 0) for k in range(N_AGG_KEYS))
    for got in _run_agg_simulated(ops, batch_size):
        assert got == want


# ======================================================================
# Replication dimension: random programs vs the sum oracle THROUGH a crash
# ======================================================================
#: survivable single-crash plans paired with the rank they kill.  The
#: crashing rank issues no updates (its partially-delivered batches would
#: not be oracle-predictable); every *surviving* writer's deltas must be
#: fully accounted for in the post-recovery store.
_SURVIVABLE_SPECS = [
    ("seed=41,crash=1@5e-5,survive=1", 1),
    ("seed=42,crash=2@2e-4,survive=1", 2),
    ("seed=43,crash=0@1e-4,survive=1,detect=4e-5", 0),
    ("seed=44,drop=0.15,crash=3@1e-4,survive=1", 3),
]


def _run_repl_simulated(ops, crash_rank, spec, replication=2):
    """Push surviving ranks' ops through a ReplicatedStore while the plan
    kills ``crash_rank``, then read the whole keyspace back after drain +
    anti-entropy.  Returns per-rank value tuples (None for the dead rank)."""
    from repro.upcxx.replication import ReplicatedStore

    def body():
        me = upcxx.rank_me()
        rt = upcxx.runtime_here()
        store = ReplicatedStore("+", batch_size=4, replication=replication,
                                credits=2, max_dwell=5e-6, cache_capacity=8)
        upcxx.barrier()
        for i, (src, key, delta) in enumerate(ops):
            if src != me or src == crash_rank:
                continue
            store.update(key, delta)
            if i % 7 == 3:
                store.poll()
        # park past the detection horizon so the drain collectives start
        # on the final alive membership everywhere (same idiom as the KV
        # service body)
        faults = rt.world.faults
        t_settle = max(t + faults.detect_timeout
                       for t in faults.crashes.values())
        if rt.now() < t_settle:
            sched = rt.sched
            sched.post_at(t_settle, lambda: sched.wake(me, t_settle))
            rt.wait_quiet(lambda: rt.now() >= t_settle, "fuzz::settle")
        upcxx.progress()

        store.store.quiesce()
        got: dict = {}
        for k in range(N_AGG_KEYS):
            store.read(k, default=0, cb=lambda key, v: got.__setitem__(key, v))
        rt.wait_quiet(lambda: store.reads_outstanding() == 0, "fuzz::reads")
        store.store.quiesce()  # settle read-triggered invalidation watchers
        store.anti_entropy()
        upcxx.barrier(team=store.store.quiesce_team)
        return tuple(got.get(k, 0) for k in range(N_AGG_KEYS))

    return upcxx.run_spmd(body, N_RANKS, faults=spec)


@settings(max_examples=8, deadline=None)
@given(st.lists(_agg_op, min_size=1, max_size=40),
       st.sampled_from(_SURVIVABLE_SPECS))
def test_random_replicated_programs_survive_crash(ops, spec_and_rank):
    """Replication dimension: with factor 2 a survivable rank crash must
    not cost any surviving writer's data — after failover + drain-time
    anti-entropy, every survivor reads back exactly the oracle sums of
    the surviving ranks' deltas.  The dead rank's slot is None; the run
    completes (never hangs, never raises)."""
    spec, crash_rank = spec_and_rank
    live_ops = [op for op in ops if op[0] != crash_rank]
    expected = _agg_oracle(live_ops)
    want = tuple(expected.get(k, 0) for k in range(N_AGG_KEYS))
    results = _run_repl_simulated(ops, crash_rank, spec)
    for rank, got in enumerate(results):
        if rank == crash_rank:
            assert got is None
        else:
            assert got == want, f"rank {rank} diverged from the sum oracle"


@settings(max_examples=10, deadline=None)
@given(st.lists(_agg_op, min_size=1, max_size=40),
       st.sampled_from([1, 8]),
       st.sampled_from(_FAULT_SPECS))
def test_random_agg_programs_under_faults(ops, batch_size, spec):
    """Chaos dimension for the aggregation layer: under lossy/jittery
    links the batched updates, acks, and invalidations must still settle
    to the exact oracle sums; a rank crash may only surface as a typed
    error — never a hang, never silent corruption."""
    from repro.sim.errors import DeadlockError, RankDeadError, RankFailure

    expected = _agg_oracle(ops)
    want = tuple(expected.get(k, 0) for k in range(N_AGG_KEYS))
    try:
        results = _run_agg_simulated(ops, batch_size, faults=spec)
    except (RankFailure, RankDeadError, DeadlockError):
        assert "crash" in spec  # only rank death may abort the run
        return
    for got in results:
        assert got == want
