"""Tests for memory kinds: device segments and the generalized copy."""

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.upcxx.errors import GlobalPtrError


def _dev_ptrs(dtype=np.float64, n=16):
    """Every rank makes a device array and broadcasts the pointer."""
    dev = upcxx.Device()
    g = dev.allocate(dtype, n)
    ptrs = [upcxx.broadcast(g, root=r).wait() for r in range(upcxx.rank_n())]
    return dev, g, ptrs


class TestDevice:
    def test_allocate_device_pointer(self):
        def body():
            dev = upcxx.Device()
            g = dev.allocate(np.float64, 10)
            assert g.kind == "device"
            assert g.rank == upcxx.rank_me()
            assert (g + 3).kind == "device"
            dev.deallocate(g)
            assert dev.usage()["in_use"] == 0

        upcxx.run_spmd(body, 2)

    def test_device_local_view_forbidden(self):
        def body():
            dev = upcxx.Device()
            g = dev.allocate(np.float64, 4)
            with pytest.raises(GlobalPtrError):
                g.local()

        upcxx.run_spmd(body, 1)

    def test_rput_into_device_memory_rejected_by_kind(self):
        """Plain rput targets host segments; device traffic goes via copy."""

        def body():
            dev = upcxx.Device()
            g = dev.allocate(np.uint8, 16)
            # pointer algebra works, but host local() is refused
            with pytest.raises(GlobalPtrError):
                g.local()

        upcxx.run_spmd(body, 1)

    def test_foreign_deallocate_rejected(self):
        def body():
            dev = upcxx.Device()
            host_g = upcxx.new_array(np.float64, 2)
            with pytest.raises(upcxx.UpcxxError):
                dev.deallocate(host_g)

        upcxx.run_spmd(body, 1)


class TestCopy:
    def test_host_to_device_to_host_local(self):
        def body():
            dev = upcxx.Device()
            d = dev.allocate(np.float64, 8)
            src = np.arange(8.0)
            upcxx.copy(src, d).wait()
            back = upcxx.new_array(np.float64, 8)
            upcxx.copy(d, back).wait()
            assert np.array_equal(back.local(), src)

        upcxx.run_spmd(body, 2)

    def test_host_array_to_remote_device(self):
        def body():
            me = upcxx.rank_me()
            _dev, _g, ptrs = _dev_ptrs()
            upcxx.barrier()
            if me == 0:
                upcxx.copy(np.full(16, 7.5), ptrs[1]).wait()
            upcxx.barrier()
            # owner pulls it down to host to check
            host = upcxx.new_array(np.float64, 16)
            upcxx.copy(ptrs[me], host).wait()
            upcxx.barrier()
            return float(host.local()[0])

        res = upcxx.run_spmd(body, 2)
        assert res[1] == 7.5

    def test_device_to_remote_device(self):
        def body():
            me = upcxx.rank_me()
            _dev, g, ptrs = _dev_ptrs()
            if me == 0:
                upcxx.copy(np.arange(16.0), g).wait()  # fill my device
                upcxx.copy(ptrs[0], ptrs[1]).wait()  # device -> remote device
            upcxx.barrier()
            host = upcxx.new_array(np.float64, 16)
            upcxx.copy(ptrs[me], host).wait()
            upcxx.barrier()
            return float(host.local().sum())

        res = upcxx.run_spmd(body, 2)
        assert res[1] == float(np.arange(16.0).sum())

    def test_host_to_remote_host_third_party(self):
        """copy() between two remote hosts routes via the initiator."""

        def body():
            me = upcxx.rank_me()
            g = upcxx.new_array(np.float64, 4)
            g.local()[:] = me
            ptrs = [upcxx.broadcast(g, root=r).wait() for r in range(3)]
            upcxx.barrier()
            if me == 0:
                upcxx.copy(ptrs[1], ptrs[2]).wait()  # 1 -> 2, initiated by 0
            upcxx.barrier()
            return float(g.local()[0])

        res = upcxx.run_spmd(body, 3)
        assert res[2] == 1.0

    def test_device_copy_slower_than_host_copy(self):
        """The PCIe hop must cost simulated time."""
        times = {}

        def body():
            me = upcxx.rank_me()
            dev = upcxx.Device()
            d = dev.allocate(np.float64, 1024)
            h = upcxx.new_array(np.float64, 1024)
            h2 = upcxx.new_array(np.float64, 1024)
            src = np.ones(1024)
            upcxx.barrier()
            if me == 0:
                t0 = upcxx.sim_now()
                upcxx.copy(src, h).wait()
                times["host"] = upcxx.sim_now() - t0
                t0 = upcxx.sim_now()
                upcxx.copy(src, d).wait()
                times["device"] = upcxx.sim_now() - t0
            upcxx.barrier()

        upcxx.run_spmd(body, 2)
        # the device path crosses PCIe: >= link latency + 8KiB transfer
        assert times["device"] > 2.3e-6
        assert times["device"] > times["host"]

    def test_dtype_mismatch_rejected(self):
        def body():
            dev = upcxx.Device()
            d = dev.allocate(np.float64, 4)
            with pytest.raises(GlobalPtrError):
                upcxx.copy(np.arange(4, dtype=np.int32), d)

        upcxx.run_spmd(body, 1)

    def test_count_limits_checked(self):
        def body():
            dev = upcxx.Device()
            d = dev.allocate(np.float64, 4)
            with pytest.raises(GlobalPtrError):
                upcxx.copy(np.zeros(8), d)
            upcxx.copy(np.zeros(8), d, count=4).wait()  # explicit count OK

        upcxx.run_spmd(body, 1)

    def test_copy_with_promise_completion(self):
        def body():
            dev = upcxx.Device()
            d = dev.allocate(np.float64, 8)
            p = upcxx.Promise()
            upcxx.copy(np.arange(8.0), d, cx=upcxx.operation_cx.as_promise(p))
            upcxx.copy(np.arange(8.0), d, cx=upcxx.operation_cx.as_promise(p))
            p.finalize().wait()
            host = upcxx.new_array(np.float64, 8)
            upcxx.copy(d, host).wait()
            assert np.array_equal(host.local(), np.arange(8.0))

        upcxx.run_spmd(body, 1)
