"""Tests for repro.apps.kvservice — traffic model + served KV workload.

Pins the deterministic surface the benchmark relies on: reproducible
open-loop traffic (Poisson/bursty arrivals, Zipf skew, read/write mix),
bit-identical service results and span fingerprints across all three
scheduler backends, open-loop sojourn-latency semantics, and the
per-op-RPC baseline path the aggregation gate compares against.
"""

import os
import random
from contextlib import contextmanager

import pytest

import repro.upcxx as upcxx
from repro.apps.kvservice import KvService, TrafficModel, default_config, kv_rank_body, zipf_cdf
from repro.util.spans import SpanBuffer


@contextmanager
def _shards(n: int):
    from repro.sim.shard import SHARDS_ENV

    old = os.environ.get(SHARDS_ENV)
    os.environ[SHARDS_ENV] = str(n)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(SHARDS_ENV, None)
        else:
            os.environ[SHARDS_ENV] = old


# ------------------------------------------------------------------- traffic
class TestTrafficModel:
    def _model(self, seed, **kw):
        args = dict(rate=1e6, n_requests=500, read_fraction=0.8,
                    zipf_s=1.1, n_keys=256)
        args.update(kw)
        return TrafficModel(random.Random(seed), **args)

    def test_deterministic_per_seed(self):
        a = list(self._model(7).requests())
        b = list(self._model(7).requests())
        c = list(self._model(8).requests())
        assert a == b
        assert a != c
        assert len(a) == 500

    def test_arrivals_nondecreasing_and_positive_rate(self):
        reqs = list(self._model(3, burst_prob=0.05).requests())
        times = [t for t, _, _, _ in reqs]
        assert all(t1 >= t0 for t0, t1 in zip(times, times[1:]))
        assert times[0] > 0.0

    def test_poisson_mean_interarrival(self):
        reqs = list(self._model(5, n_requests=4000).requests())
        mean_gap = reqs[-1][0] / len(reqs)
        assert mean_gap == pytest.approx(1e-6, rel=0.1)

    def test_bursts_compress_interarrivals(self):
        calm = list(self._model(5, n_requests=4000, burst_prob=0.0).requests())
        bursty = list(self._model(5, n_requests=4000, burst_prob=0.2,
                                  burst_mult=8.0, burst_len=64).requests())
        assert bursty[-1][0] < calm[-1][0]  # same count, less elapsed time

    def test_zipf_skew_concentrates_on_hot_keys(self):
        m = self._model(11)
        draws = [m.draw_key() for _ in range(4000)]
        counts = {}
        for k in draws:
            counts[k] = counts.get(k, 0) + 1
        hottest = max(counts, key=counts.get)
        assert hottest == 0
        top16 = sum(counts.get(k, 0) for k in range(16)) / len(draws)
        assert top16 > 0.3

    def test_read_write_mix(self):
        reqs = list(self._model(2, read_fraction=0.75, n_requests=2000).requests())
        reads = sum(1 for _, op, _, _ in reqs if op == "get")
        assert reads / len(reqs) == pytest.approx(0.75, abs=0.05)
        # writes carry deterministic nonzero payloads
        assert all(v > 0 for _, op, _, v in reqs if op == "put")

    def test_validation(self):
        with pytest.raises(ValueError):
            self._model(1, rate=0.0)
        with pytest.raises(ValueError):
            self._model(1, read_fraction=1.5)
        with pytest.raises(ValueError):
            zipf_cdf(0, 1.1)

    def test_zipf_cdf_shape(self):
        cdf = zipf_cdf(16, 1.2)
        assert len(cdf) == 16
        assert cdf[-1] == 1.0
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))


# ------------------------------------------------------------------- service
def _tiny_cfg(**overrides):
    cfg = default_config("tiny")
    cfg.update({"ranks": 4, "ppn": 2, "n_requests": 64, "n_keys": 64})
    cfg.update(overrides)
    return cfg


def _run_kv(backend, cfg, seed=7):
    sp = SpanBuffer()
    res = upcxx.run_spmd(
        lambda: kv_rank_body(cfg), cfg["ranks"], ppn=cfg["ppn"],
        seed=seed, backend=backend, spans=sp,
    )
    return list(res), sp.fingerprint()


class TestKvService:
    def test_all_requests_complete(self):
        cfg = _tiny_cfg()
        res, _ = _run_kv("coroutines", cfg)
        total = sum(r["reads"] + r["writes"] for r in res)
        assert total == cfg["ranks"] * cfg["n_requests"]
        for r in res:
            assert r["read_lat"]["n"] == r["reads"]
            assert r["write_lat"]["n"] == r["writes"]

    def test_bit_identical_across_backends(self):
        cfg = _tiny_cfg()
        ref = _run_kv("coroutines", cfg)
        assert _run_kv("threads", cfg) == ref
        with _shards(2):
            assert _run_kv("sharded", cfg) == ref

    def test_latency_histograms_have_tail_percentiles(self):
        res, _ = _run_kv("coroutines", _tiny_cfg())
        for r in res:
            for lat in (r["read_lat"], r["write_lat"]):
                if lat["n"] == 0:
                    continue
                assert lat["p50_s"] <= lat["p99_s"] <= lat["p999_s"] <= lat["max_s"]
                assert lat["p999_s"] > 0.0

    def test_open_loop_latency_includes_queueing(self):
        """Saturating offered load must inflate sojourn latency well past
        the unloaded service time — the open-loop property the knee sweep
        depends on (a closed-loop measurement would hide the backlog)."""

        def p50_read(cfg):
            res, _ = _run_kv("coroutines", cfg)
            from repro.util.metrics import DwellHistogram

            h = DwellHistogram()
            for r in res:
                h.merge(DwellHistogram.from_dict(r["read_lat"]))
            return h.percentile(50)

        calm = p50_read(_tiny_cfg(rate=50_000.0))
        slammed = p50_read(_tiny_cfg(rate=50_000_000.0))
        assert slammed > calm * 10

    def test_cache_serves_hot_keys(self):
        cfg = _tiny_cfg(zipf_s=1.4, read_fraction=0.95)
        res, _ = _run_kv("coroutines", cfg)
        assert sum(r["cache_hits"] for r in res) > 0

    def test_per_op_rpc_baseline_path(self):
        """aggregate=False serves the same traffic through batch-1 acked
        RPCs — the gate's baseline; every request still completes."""
        cfg = _tiny_cfg(aggregate=False)
        res, _ = _run_kv("coroutines", cfg)
        total = sum(r["reads"] + r["writes"] for r in res)
        assert total == cfg["ranks"] * cfg["n_requests"]
        writes = sum(r["writes"] for r in res)
        batches = sum(r["batches_sent"] for r in res)
        assert batches == writes  # batch size 1: one batch per write
        assert all(r["cache_hits"] == 0 for r in res)

    def test_aggregation_reduces_batches(self):
        # saturating rate: arrivals outpace the dwell deadline, so flushes
        # are size-triggered (the dwell path is covered by the aggregator
        # unit tests; at low offered load partial batches flush on time)
        agg, _ = _run_kv("coroutines", _tiny_cfg(read_fraction=0.0, rate=5e7))
        rpc, _ = _run_kv("coroutines", _tiny_cfg(read_fraction=0.0, rate=5e7, aggregate=False))
        assert sum(r["batches_sent"] for r in agg) < sum(r["batches_sent"] for r in rpc) / 4

    def test_service_validates_construction_collectively(self):
        def body():
            with pytest.raises(ValueError):
                KvService(batch_size=0)

        upcxx.run_spmd(body, 1)


class TestKvBench:
    def test_summarize_point_folds_ranks(self):
        from repro.bench.kv_bench import run_kv, summarize_point

        cfg = _tiny_cfg()
        results, _ = run_kv(cfg, "coroutines")
        point = summarize_point(cfg, results)
        assert point["n_requests"] == cfg["ranks"] * cfg["n_requests"]
        assert point["offered_rps"] == cfg["ranks"] * cfg["rate"]
        assert point["achieved_rps"] > 0
        assert 0.0 < point["p50_s"] <= point["p999_s"]

    def test_ablation_clears_gate_target(self):
        """The tentpole's acceptance number: aggregated write throughput
        at batch >= 64 holds >= 4x over the per-op RPC baseline.  Measured
        in simulated time, so this is exact on any host."""
        from repro.bench.kv_bench import aggregation_ablation
        from repro.bench.perf_harness import KV_GATE

        ab = aggregation_ablation("tiny")
        assert ab["aggregated"]["batch_size"] >= 64
        assert ab["speedup"] >= KV_GATE["target_speedup"] == 4.0
