"""End-to-end extend-add tests: all three variants against a dense serial
reference, plus the v0.1 emulation layer."""

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.apps.sparse.extend_add import (
    EaddPlan,
    build_eadd_plan,
    mpi_eadd_run,
    serial_eadd_reference,
    upcxx_eadd_run,
    _build_instances,
)
from repro.mpisim import run_mpi


@pytest.fixture(scope="module")
def small_plan():
    return build_eadd_plan(4, 4, 3, n_procs=4, leaf_size=6, block=4)


class TestPlan:
    def test_plan_counts(self, small_plan):
        assert small_plan.parents
        assert small_plan.total_entries > 0
        # expected counts exist for all (parent, team member) pairs
        for pid in small_plan.parents:
            for r in small_plan.teams[pid]:
                assert (pid, r) in small_plan.expected

    def test_instances_cover_all_blocks(self, small_plan):
        for nid, team in small_plan.teams.items():
            n = small_plan.fronts[nid].front_size
            got = np.zeros((n, n))
            for r in team:
                inst = _build_instances(small_plan, r)[nid]
                got += np.ones_like(inst.dense()) * 0  # shape check only
                for (bi, bj), blk in inst.blocks.items():
                    got[
                        bi * inst.grid.block : bi * inst.grid.block + blk.shape[0],
                        bj * inst.grid.block : bj * inst.grid.block + blk.shape[1],
                    ] += 1
            assert np.all(got == 1), f"front {nid}: blocks not a partition"


def _gather_result(plan, instances_by_rank):
    """Assemble each parent front from the per-rank instances."""
    out = {}
    for pid in plan.parents:
        n = plan.fronts[pid].front_size
        acc = np.zeros((n, n))
        for r, insts in instances_by_rank.items():
            if pid in insts:
                acc += insts[pid].dense()
        out[pid] = acc
    return out


def _check_against_reference(plan, instances_by_rank):
    ref = serial_eadd_reference(plan)
    got = _gather_result(plan, instances_by_rank)
    for pid in plan.parents:
        assert np.allclose(got[pid], ref[pid]), f"front {pid} mismatch"


class TestUpcxxEadd:
    def test_matches_serial_reference(self, small_plan):
        collected = {}

        def body():
            return upcxx_eadd_run(small_plan, collect=collected)

        upcxx.run_spmd(body, 4)
        _check_against_reference(small_plan, collected)

    def test_driver_returns_positive_elapsed(self, small_plan):
        def body():
            return upcxx_eadd_run(small_plan)

        times = upcxx.run_spmd(body, 4)
        assert all(t > 0 for t in times)


class TestMpiEadd:
    @pytest.mark.parametrize("variant", ["alltoallv", "p2p"])
    def test_matches_serial_reference(self, small_plan, variant):
        collected = {}

        def body():
            return mpi_eadd_run(small_plan, variant, collect=collected)

        run_mpi(body, 4)
        _check_against_reference(small_plan, collected)

    @pytest.mark.parametrize("variant", ["alltoallv", "p2p"])
    def test_driver_returns_positive_elapsed(self, small_plan, variant):
        def body():
            return mpi_eadd_run(small_plan, variant)

        times = run_mpi(body, 4)
        assert all(t > 0 for t in times)


class TestCrossVariantConsistency:
    def test_all_variants_same_data_volume(self, small_plan):
        """The paper: every variant communicates the same amount of data."""
        ref = serial_eadd_reference(small_plan)
        total_ref = sum(m.sum() for m in ref.values())
        assert total_ref > 0

        def upcxx_body():
            return upcxx_eadd_run(small_plan)

        def mpi_body_a():
            return mpi_eadd_run(small_plan, "alltoallv")

        def mpi_body_p():
            return mpi_eadd_run(small_plan, "p2p")

        tu = upcxx.run_spmd(upcxx_body, 4)
        ta = run_mpi(mpi_body_a, 4)
        tp = run_mpi(mpi_body_p, 4)
        # sanity: everything ran; all elapsed positive
        assert all(t > 0 for t in tu + ta + tp)

    def test_single_proc_all_variants(self):
        plan = build_eadd_plan(4, 4, 2, n_procs=1, leaf_size=6, block=4)

        def upcxx_body():
            return upcxx_eadd_run(plan)

        def mpi_body():
            return mpi_eadd_run(plan, "alltoallv")

        assert upcxx.run_spmd(upcxx_body, 1)[0] > 0
        assert run_mpi(mpi_body, 1)[0] > 0
