"""End-to-end numeric tests: the distributed multifrontal Cholesky must
reproduce dense Cholesky / scipy solutions exactly (to rounding)."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

import repro.upcxx as upcxx
from repro.apps.sparse.numeric import (
    CholeskyPlan,
    build_cholesky_plan,
    cholesky_factor,
    cholesky_solve,
    factor_and_solve,
)


def _solve_distributed(plan, b, n_procs):
    res = upcxx.run_spmd(lambda: factor_and_solve(plan, b), n_procs, max_time=1e7)
    # every rank returns the same gathered x
    for r in res[1:]:
        assert np.allclose(res[0], r)
    return res[0]


class TestFactorization:
    @pytest.mark.parametrize("n_procs", [1, 2, 4])
    def test_solves_laplacian(self, n_procs):
        plan = build_cholesky_plan(4, 4, 3, n_procs=n_procs, leaf_size=8)
        rng = np.random.default_rng(42)
        b = rng.standard_normal(plan.n)
        x = _solve_distributed(plan, b, n_procs)
        ref = spla.spsolve(sp.csc_matrix(plan.a), b)
        assert np.allclose(x, ref, atol=1e-8), f"max err {np.abs(x - ref).max()}"

    def test_residual_small(self):
        plan = build_cholesky_plan(5, 4, 3, n_procs=4, leaf_size=10)
        b = np.arange(plan.n, dtype=float)
        x = _solve_distributed(plan, b, 4)
        r = plan.a @ x - b
        assert np.linalg.norm(r) / np.linalg.norm(b) < 1e-10

    def test_larger_grid_more_procs(self):
        plan = build_cholesky_plan(6, 6, 4, n_procs=8, leaf_size=16)
        rng = np.random.default_rng(7)
        b = rng.standard_normal(plan.n)
        x = _solve_distributed(plan, b, 8)
        ref = spla.spsolve(sp.csc_matrix(plan.a), b)
        assert np.allclose(x, ref, atol=1e-7)

    def test_factor_diagonal_positive(self):
        """Cholesky of an SPD matrix yields strictly positive pivots."""
        plan = build_cholesky_plan(4, 3, 2, n_procs=2, leaf_size=6)
        collected = {}

        def body():
            state = cholesky_factor(plan)
            collected[upcxx.rank_me()] = state
            upcxx.barrier()

        upcxx.run_spmd(body, 2, max_time=1e7)
        for state in collected.values():
            for l11, _l21 in state.factors.values():
                assert np.all(np.diag(l11) > 0)

    def test_multiple_rhs_reuse_factorization(self):
        plan = build_cholesky_plan(4, 4, 2, n_procs=2, leaf_size=8)
        rng = np.random.default_rng(3)
        b1 = rng.standard_normal(plan.n)
        b2 = rng.standard_normal(plan.n)
        out = {}

        def body():
            state = cholesky_factor(plan)
            x1 = cholesky_solve(plan, state, b1)
            x2 = cholesky_solve(plan, state, b2)
            if upcxx.rank_me() == 0:
                out["x1"], out["x2"] = x1, x2
            upcxx.barrier()

        upcxx.run_spmd(body, 2, max_time=1e7)
        a = sp.csc_matrix(plan.a)
        assert np.allclose(out["x1"], spla.spsolve(a, b1), atol=1e-8)
        assert np.allclose(out["x2"], spla.spsolve(a, b2), atol=1e-8)

    def test_deterministic_across_runs(self):
        plan = build_cholesky_plan(4, 4, 2, n_procs=4, leaf_size=8)
        b = np.ones(plan.n)
        x1 = _solve_distributed(plan, b, 4)
        x2 = _solve_distributed(plan, b, 4)
        assert np.array_equal(x1, x2)  # bit-identical (deterministic sim)

    def test_nontrivial_parallelism(self):
        """More ranks than one actually own fronts (tree parallelism)."""
        plan = build_cholesky_plan(6, 6, 4, n_procs=8, leaf_size=16)
        owners = set(plan.owner.values())
        assert len(owners) == 8
